"""Array storage backends and binary persistence for collections/indexes.

Two concerns live here, both about *how index data is laid out in memory
or on disk* rather than what it means:

1. **Binary persistence** — text files (:mod:`repro.data.io`) are the
   interchange format; the ``RSC1``/``RIX1`` binary layouts below are the
   fast path, so a prebuilt index (or a big collection) loads in
   milliseconds instead of being re-parsed per process.
2. **The CSR array backend** — :class:`CSRInvertedIndex` packs *all*
   inverted lists into two contiguous numpy arrays (``offsets``,
   ``values``) plus a composite-keyed mirror (``keyed``), the layout the
   batched kernels in :mod:`repro.index.kernels` run on and the one that
   can be shared zero-copy with worker processes through
   ``multiprocessing.shared_memory``.
3. **The hybrid backend** — :class:`HybridInvertedIndex` keeps the full
   CSR arrays and *additionally* packs the densest inverted lists into
   uint64 bitmap rows (one bit per S-record), so probes against them
   become word masking + bit-scan instead of a binary search over all
   postings. Representation selection is by list length against a density
   threshold (default from
   :func:`repro.core.estimate.element_frequency_profile`); everything the
   CSR backend supports — tree binding, pickling, REPRO_CHECK layout
   checks, zero-copy sharing — works unchanged because the CSR arrays are
   always present and authoritative.

Persistence layout (all integers little-endian):

* collection file: magic ``RSC1`` · u64 count · per record: u32 length +
  u64 element ids;
* index file: magic ``RIX1`` · u64 inf_sid · u64 universe length + u64 ids
  (``0xFFFF_FFFF_FFFF_FFFF`` in the length slot marks a contiguous
  ``range`` universe, stored as just its end) · u64 list count · per list:
  u64 element + u32 length + u64 sids.

Numpy handles the bulk (de)serialisation, so costs are I/O-bound.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import signal
import struct
import threading
import weakref
from itertools import chain
from multiprocessing import shared_memory
from types import FrameType
from typing import (
    Any,
    BinaryIO,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..data.collection import SetCollection
from ..errors import DatasetError, InvalidParameterError, ShmAttachError
from ..obs import registry as _obs
from .inverted import EMPTY_LIST, InvertedIndex
from .search import contains_sorted

__all__ = [
    "CSRInvertedIndex",
    "HybridInvertedIndex",
    "DeltaSegment",
    "IndexSnapshot",
    "IncrementalIndex",
    "SharedCSRHandle",
    "attach_shared_index",
    "save_collection_binary",
    "load_collection_binary",
    "save_index",
    "load_index",
]

_COLLECTION_MAGIC = b"RSC1"
_INDEX_MAGIC = b"RIX1"
_RANGE_SENTINEL = 0xFFFF_FFFF_FFFF_FFFF


def _write_ids(handle: BinaryIO, ids: Sequence[int]) -> None:
    np.asarray(ids, dtype="<u8").tofile(handle)


def _read_ids(handle: BinaryIO, count: int) -> List[int]:
    data = np.fromfile(handle, dtype="<u8", count=count)
    if len(data) != count:
        raise DatasetError("binary file truncated")
    return data.tolist()


def save_collection_binary(collection: SetCollection, path: str) -> None:
    """Write a collection in the ``RSC1`` binary layout."""
    with open(path, "wb") as handle:
        handle.write(_COLLECTION_MAGIC)
        handle.write(struct.pack("<Q", len(collection)))
        lengths = np.fromiter(
            (len(rec) for rec in collection), dtype="<u4", count=len(collection)
        )
        lengths.tofile(handle)
        flat: List[int] = []
        for record in collection:
            flat.extend(record)
        _write_ids(handle, flat)


def load_collection_binary(path: str) -> SetCollection:
    """Read a collection written by :func:`save_collection_binary`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _COLLECTION_MAGIC:
            raise DatasetError(
                f"{path}: not a binary set collection (magic {magic!r})"
            )
        (count,) = struct.unpack("<Q", handle.read(8))
        lengths = np.fromfile(handle, dtype="<u4", count=count)
        if len(lengths) != count:
            raise DatasetError(f"{path}: truncated length table")
        flat = np.fromfile(handle, dtype="<u8", count=int(lengths.sum()))
        if len(flat) != lengths.sum():
            raise DatasetError(f"{path}: truncated record data")
    records = []
    offset = 0
    for n in lengths:
        records.append(flat[offset: offset + n].tolist())
        offset += int(n)
    return SetCollection(records, validate=False)


def save_index(index: InvertedIndex, path: str) -> None:
    """Write an inverted index in the ``RIX1`` binary layout."""
    with open(path, "wb") as handle:
        handle.write(_INDEX_MAGIC)
        handle.write(struct.pack("<Q", index.inf_sid))
        universe = index.universe
        if isinstance(universe, range) and universe == range(len(universe)):
            handle.write(struct.pack("<Q", _RANGE_SENTINEL))
            handle.write(struct.pack("<Q", len(universe)))
        else:
            handle.write(struct.pack("<Q", len(universe)))
            _write_ids(handle, list(universe))
        handle.write(struct.pack("<Q", len(index.lists)))
        for element in sorted(index.lists):
            lst = index.lists[element]
            handle.write(struct.pack("<QI", element, len(lst)))
            _write_ids(handle, lst)


def load_index(path: str) -> InvertedIndex:
    """Read an index written by :func:`save_index`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _INDEX_MAGIC:
            raise DatasetError(f"{path}: not a binary index (magic {magic!r})")
        (inf_sid,) = struct.unpack("<Q", handle.read(8))
        (universe_len,) = struct.unpack("<Q", handle.read(8))
        if universe_len == _RANGE_SENTINEL:
            (end,) = struct.unpack("<Q", handle.read(8))
            universe: Sequence[int] = range(end)
        else:
            universe = _read_ids(handle, universe_len)
        (num_lists,) = struct.unpack("<Q", handle.read(8))
        lists: Dict[int, List[int]] = {}
        for __ in range(num_lists):
            header = handle.read(12)
            if len(header) != 12:
                raise DatasetError(f"{path}: truncated list header")
            element, length = struct.unpack("<QI", header)
            lists[element] = _read_ids(handle, length)
    return InvertedIndex(lists, universe, inf_sid)


# --------------------------------------------------------------------------
# CSR array backend
# --------------------------------------------------------------------------


def _debug_check_csr(index: "CSRInvertedIndex") -> "CSRInvertedIndex":
    """REPRO_CHECK=1 hook: validate the CSR layout after build/attach.

    The environment test runs first so the disabled path costs one dict
    lookup and never imports :mod:`repro.core.selfcheck`.
    """
    if os.environ.get("REPRO_CHECK", "") not in ("", "0"):
        from ..core.selfcheck import check_csr_layout

        check_csr_layout(index)
    return index


def _debug_check_hybrid(index: "HybridInvertedIndex") -> "HybridInvertedIndex":
    """REPRO_CHECK=1 hook: validate CSR *and* bitmap layout after build."""
    if os.environ.get("REPRO_CHECK", "") not in ("", "0"):
        from ..core.selfcheck import check_hybrid_layout

        check_hybrid_layout(index)
    return index


class _CSRListMapping:
    """Dict-like view over CSR lists, so tree binding works unchanged.

    ``bind_tree`` (and anything else written against ``InvertedIndex.lists``)
    only needs ``get``; lookups return zero-copy numpy slices of ``values``.
    """

    __slots__ = ("_index",)

    def __init__(self, index: "CSRInvertedIndex") -> None:
        self._index = index

    def get(
        self, element: int, default: object = EMPTY_LIST
    ) -> Union[np.ndarray, object]:
        idx = self._index
        if 0 <= element < idx.num_slots:
            lo = idx.offsets[element]
            hi = idx.offsets[element + 1]
            if lo != hi:
                return idx.values[lo:hi]
        return default

    def __getitem__(self, element: int) -> np.ndarray:
        lst = self.get(element, None)
        if lst is None:
            raise KeyError(element)
        return lst  # type: ignore[return-value]

    def __contains__(self, element: int) -> bool:
        return self.get(element, None) is not None

    def __len__(self) -> int:
        counts = np.diff(self._index.offsets)
        return int(np.count_nonzero(counts))


# -- interrupted-run shm hygiene -------------------------------------------
#
# Shared-memory segments are kernel objects: if the creating driver dies
# with live segments, they persist in /dev/shm until reboot. The join
# drivers release their handles in ``finally`` blocks, which covers every
# *exception* path — but a signal that terminates the process without
# unwinding (SIGTERM's default handler, an un-caught SIGINT outside any
# try) skips those blocks. The registry below tracks every creator-side
# handle in a WeakSet and installs, lazily on first creation:
#
# * an ``atexit`` hook (covers normal interpreter shutdown and SIG_DFL-free
#   exits), and
# * SIGINT/SIGTERM backstop handlers — installed **only** when the current
#   handler is the Python default, so a run that armed its own cooperative
#   cancellation (repro.core.runlog.signal_cancellation) is never
#   overridden: during a durable run *that* layer owns the signals and
#   cleans up through the driver's ``finally``; the backstop covers
#   unsupervised interruptions, where terminating is correct. After
#   cleaning up, the previous default behaviour is re-delivered (SIGINT
#   raises KeyboardInterrupt, SIGTERM terminates with the right status).
#
# A SIGKILL still leaks by definition (nothing runs); the durable-run layer
# closes that residual hole by persisting segment names and reclaiming them
# on resume.

#: handle -> creating pid. Forked workers inherit this mapping (and the
#: signal handlers) from the driver, so cleanup filters on the recorded
#: pid: only the creating process may unlink — a terminated worker tearing
#: down the *driver's* live segments would kill every sibling's attach.
_LIVE_HANDLES: "weakref.WeakKeyDictionary[SharedCSRHandle, int]" = (
    weakref.WeakKeyDictionary()
)
_HOOKS_INSTALLED = False


def _cleanup_live_handles() -> None:
    """Close+unlink this process's still-live creator handles (idempotent)."""
    pid = os.getpid()
    for handle, owner in list(_LIVE_HANDLES.items()):
        if owner == pid:
            handle.cleanup()


def _interrupt_cleanup(signum: int, frame: Optional[FrameType]) -> None:
    _cleanup_live_handles()
    # Re-deliver the default behaviour the handler displaced: for SIGINT
    # that is raising KeyboardInterrupt, for SIGTERM dying with the signal
    # in the exit status (so parents see a real SIGTERM death).
    if signum == signal.SIGINT:
        raise KeyboardInterrupt
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_cleanup_hooks() -> None:
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(_cleanup_live_handles)
    if threading.current_thread() is not threading.main_thread():
        return  # signal.signal is main-thread-only; atexit still covers exits
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(OSError, ValueError):
            current = signal.getsignal(sig)
            if current in (signal.SIG_DFL, signal.default_int_handler):
                signal.signal(sig, _interrupt_cleanup)


def _register_creator_handle(handle: "SharedCSRHandle") -> None:
    _LIVE_HANDLES[handle] = os.getpid()
    _install_cleanup_hooks()


class SharedCSRHandle:
    """Picklable ticket for attaching an array-backend index zero-copy.

    The parent process creates the shared-memory segments with
    :meth:`CSRInvertedIndex.to_shared_memory` and ships this handle (a few
    strings and ints) to each worker; workers attach the same physical
    pages via :func:`attach_shared_index` (which dispatches on :attr:`kind`
    — ``"csr"`` carries the three CSR arrays, ``"hybrid"`` additionally the
    dense-element ids and the bitmap words). Lifecycle rules:

    * the **creator** keeps the handle and calls :meth:`cleanup` once all
      consumers are done — this closes its mappings and unlinks the
      segments;
    * **consumers** simply drop their index; the attached segments close
      with it and are never unlinked from the worker side.
    """

    # __weakref__ lets the interrupted-run registry hold creator handles
    # weakly: a handle that is garbage-collected drops out on its own.
    __slots__ = (
        "segments", "inf_sid", "universe_len", "construction_cost", "kind",
        "_shms", "__weakref__",
    )

    def __init__(
        self,
        segments: Tuple[Tuple[str, str, int], ...],
        inf_sid: int,
        universe_len: int,
        construction_cost: int,
        shms: Optional[Tuple[shared_memory.SharedMemory, ...]] = None,
        kind: str = "csr",
    ) -> None:
        #: (shm name, dtype string, array length) per shared array, in the
        #: order of the owning class's ``_shared_arrays()``.
        self.segments = segments
        self.inf_sid = inf_sid
        self.universe_len = universe_len
        self.construction_cost = construction_cost
        self.kind = kind
        self._shms = shms  # creator-side references; never pickled
        if shms is not None:
            # Creator side only (worker-side handles arrive via pickle and
            # never own segments): track for interrupted-run cleanup.
            _register_creator_handle(self)

    def __getstate__(
        self,
    ) -> Tuple[Tuple[Tuple[str, str, int], ...], int, int, int, str]:
        return (
            self.segments, self.inf_sid, self.universe_len,
            self.construction_cost, self.kind,
        )

    def __setstate__(
        self, state: Tuple[Tuple[Tuple[str, str, int], ...], int, int, int, str]
    ) -> None:
        (
            self.segments, self.inf_sid, self.universe_len,
            self.construction_cost, self.kind,
        ) = state
        self._shms = None

    def cleanup(self) -> None:
        """Creator-side teardown: close the mappings and unlink the segments.

        Idempotent and abort-safe by design: the supervisor's failure paths
        can reach this both from their own unwinding and from the join
        driver's ``finally``, and a segment may already be gone (e.g. the
        resource tracker reclaimed it after a worker crash) — a second call,
        or an unlink racing an external removal, is a no-op rather than a
        new exception on an already-failing path.
        """
        shms, self._shms = self._shms, None
        if shms is None:
            return
        _LIVE_HANDLES.pop(self, None)
        for shm in shms:
            with contextlib.suppress(OSError, BufferError):  # pragma: no cover
                shm.close()
            with contextlib.suppress(OSError):  # pragma: no cover - best effort
                shm.unlink()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Attaching re-registers the segment with the resource tracker (Python
    # <= 3.12 registers unconditionally). That is safe here: pool workers
    # are always children of the creating process and therefore share its
    # tracker, so the duplicate registration dedupes and the creator's
    # ``unlink`` is the single point that unregisters. (An *unrelated*
    # process attaching by name would need ``resource_tracker.unregister``
    # to stop its own tracker reclaiming the segment at exit — that pattern
    # is out of scope for the join drivers.)
    #
    # Attach failures are re-raised as ShmAttachError so the supervisor can
    # classify them: a worker whose /dev/shm mapping fails needs a payload
    # downgrade (shm -> pickle), not a blind retry against the same broken
    # segment. ValueError covers the zero-size corruption case the kernel
    # reports on a truncated segment.
    try:
        return shared_memory.SharedMemory(name=name)
    except (OSError, ValueError) as exc:
        raise ShmAttachError(
            f"cannot attach shared-memory segment {name!r}: {exc}"
        ) from exc


class CSRInvertedIndex:
    """All inverted lists of ``S`` packed into contiguous numpy arrays.

    The CSR (compressed sparse row) layout over the dense element domain
    ``[0, num_slots)``:

    * ``offsets`` — int64, shape ``(num_slots + 1,)``; the list of element
      ``e`` is ``values[offsets[e]:offsets[e + 1]]`` (empty for elements
      not in ``S``);
    * ``values``  — the postings (ascending set ids per list), int32 when
      ids fit, int64 otherwise;
    * ``keyed``   — int64 mirror ``element * stride + sid`` with
      ``stride = max(inf_sid, 1)``; globally sorted, which is what lets
      :mod:`repro.index.kernels` answer any batch of (list, target) probes
      with one ``np.searchsorted``.

    The class is API-compatible with :class:`~repro.index.inverted
    .InvertedIndex` for probing (``lists``/``get_lists``/``universe``/
    ``inf_sid``), so the tree join binds against it unchanged; it does not
    support mutation (``append_set``) or local-index construction — those
    stay on the Python backend.
    """

    __slots__ = (
        "offsets",
        "values",
        "keyed",
        "stride",
        "inf_sid",
        "universe",
        "lists",
        "_construction_cost",
        "_shms",
    )

    def __init__(
        self,
        offsets: np.ndarray,
        values: np.ndarray,
        keyed: np.ndarray,
        inf_sid: int,
        universe: Sequence[int],
        construction_cost: int = 0,
        shms: Optional[Tuple[shared_memory.SharedMemory, ...]] = None,
    ) -> None:
        self.offsets = offsets
        self.values = values
        self.keyed = keyed
        self.inf_sid = inf_sid
        self.stride = max(inf_sid, 1)
        self.universe = universe
        self.lists = _CSRListMapping(self)
        self._construction_cost = construction_cost
        self._shms = shms  # keeps attached segments alive with the arrays

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, s_collection: SetCollection) -> "CSRInvertedIndex":
        """Build the global CSR index for ``S`` in one vectorized pass.

        Elements are flattened once, postings are grouped per element with
        a stable argsort (insertion order is ascending set id, so every
        list comes out sorted without per-list work), and offsets fall out
        of a ``bincount``/``cumsum``.
        """
        n = len(s_collection)
        records = s_collection.records
        total = sum(len(rec) for rec in records)
        elems = np.fromiter(chain.from_iterable(records), dtype=np.int64, count=total)
        lens = np.fromiter((len(rec) for rec in records), dtype=np.int64, count=n)
        sid_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        sids = np.repeat(np.arange(n, dtype=sid_dtype), lens)
        order = np.argsort(elems, kind="stable")
        elems_sorted = elems[order]
        values = sids[order]
        num_slots = int(elems_sorted[-1]) + 1 if total else 0
        stride = max(n, 1)
        _check_key_space(num_slots, stride)
        counts = np.bincount(elems, minlength=num_slots)
        offsets = np.zeros(num_slots + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        keyed = elems_sorted * stride + values
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.csr_builds")
            reg.inc("index.csr_postings", total)
        return _debug_check_csr(cls(
            offsets, values, keyed,
            inf_sid=n, universe=range(n), construction_cost=total,
        ))

    @classmethod
    def from_index(cls, index: InvertedIndex) -> "CSRInvertedIndex":
        """Repack an existing :class:`InvertedIndex` (global or local)."""
        elements = sorted(e for e, lst in index.lists.items() if len(lst))
        num_slots = (elements[-1] + 1) if elements else 0
        inf_sid = index.inf_sid
        stride = max(inf_sid, 1)
        _check_key_space(num_slots, stride)
        sid_dtype = np.int32 if inf_sid <= np.iinfo(np.int32).max else np.int64
        offsets = np.zeros(num_slots + 1, dtype=np.int64)
        parts = []
        for e in elements:
            lst = index.lists[e]
            offsets[e + 1] = len(lst)
            parts.append(np.asarray(lst, dtype=sid_dtype))
        np.cumsum(offsets, out=offsets)
        values = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=sid_dtype)
        )
        elems = np.repeat(
            np.asarray(elements, dtype=np.int64),
            np.diff(offsets)[np.asarray(elements, dtype=np.int64)]
            if elements else np.zeros(0, dtype=np.int64),
        )
        keyed = elems * stride + values
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.csr_builds")
            reg.inc("index.csr_postings", int(values.shape[0]))
        return _debug_check_csr(cls(
            offsets, values, keyed,
            inf_sid=inf_sid,
            universe=index.universe,
            construction_cost=index.construction_cost,
        ))

    # -- pickling (used by the pickle fallback of parallel_join) ----------

    def __getstate__(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, Sequence[int], int]:
        return (
            np.asarray(self.offsets),
            np.asarray(self.values),
            np.asarray(self.keyed),
            self.inf_sid,
            self.universe,
            self._construction_cost,
        )

    def __setstate__(
        self,
        state: Tuple[np.ndarray, np.ndarray, np.ndarray, int, Sequence[int], int],
    ) -> None:
        offsets, values, keyed, inf_sid, universe, cost = state
        self.__init__(offsets, values, keyed, inf_sid, universe, cost)  # type: ignore[misc]

    # -- accessors --------------------------------------------------------

    @property
    def num_slots(self) -> int:
        """Size of the dense element domain (``max element in S`` + 1)."""
        return len(self.offsets) - 1

    def __getitem__(self, element: int) -> Union[np.ndarray, Tuple[int, ...]]:
        return self.lists.get(element, EMPTY_LIST)  # type: ignore[return-value]

    def __contains__(self, element: int) -> bool:
        return element in self.lists

    def __len__(self) -> int:
        """Number of distinct elements indexed (non-empty lists)."""
        return len(self.lists)

    def get_list(self, element: int) -> np.ndarray:
        """Zero-copy numpy view of element's list (empty view if absent)."""
        if 0 <= element < self.num_slots:
            return self.values[self.offsets[element]: self.offsets[element + 1]]
        return self.values[:0]

    def get_lists(self, elements: Sequence[int]) -> List[Any]:
        """The inverted lists for a record, empty tuples included."""
        get = self.lists.get
        return [get(e, EMPTY_LIST) for e in elements]

    def list_length(self, element: int) -> int:
        """``|I[e]|`` — 0 for elements not in ``S``."""
        if 0 <= element < self.num_slots:
            return int(self.offsets[element + 1] - self.offsets[element])
        return 0

    def record_probe(
        self, record: Sequence[int]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-list probe arrays ``(bases, starts, ends)`` for one record.

        ``bases[i] = e_i * stride`` keys the record's i-th list in
        ``keyed``; ``starts``/``ends`` bound it in ``values``. Returns
        ``None`` when any element has an empty list (such a record can
        never find a superset — the caller skips it, as the Python
        framework does).
        """
        elems = np.asarray(record, dtype=np.int64)
        if elems.shape[0] == 0 or (elems.shape[0] and int(elems[-1]) >= self.num_slots):
            # Records are stored sorted, so the last element is the max.
            return None
        starts = self.offsets[elems]
        ends = self.offsets[elems + 1]
        if np.any(starts == ends):
            return None
        return elems * self.stride, starts, ends

    def supersets_of(self, record: Sequence[int]) -> np.ndarray:
        """Positions of indexed sets containing every element of ``record``.

        The point-query face of the containment join: the record's
        inverted lists are intersected smallest-first, with membership
        answered by one batched ``np.searchsorted`` per list, so the cost
        is proportional to the smallest list, not to ``|S|``. Returns an
        ascending int64 array of set ids; an empty record matches every
        indexed set. Positions equal external sids only for a global index
        (``universe == range(inf_sid)``) — the only kind
        :class:`IncrementalIndex` builds.
        """
        elems = sorted({int(e) for e in record})
        if not elems:
            return np.arange(self.inf_sid, dtype=np.int64)
        lists: List[np.ndarray] = []
        for e in elems:
            lst = self.get_list(e)
            if lst.shape[0] == 0:
                return np.zeros(0, dtype=np.int64)
            lists.append(lst)
        lists.sort(key=lambda lst: lst.shape[0])
        cand = lists[0].astype(np.int64)
        for lst in lists[1:]:
            if cand.shape[0] == 0:
                break
            # side="left": a hit lands exactly on its occurrence, so after
            # clipping, a miss (insertion point == len) compares unequal.
            idx = np.searchsorted(lst, cand)
            np.minimum(idx, lst.shape[0] - 1, out=idx)
            cand = cand[lst[idx] == cand]
        return cand

    @property
    def construction_cost(self) -> int:
        """Tokens touched while building — ``Σ|S|`` in the paper's cost model."""
        return self._construction_cost

    def size_in_entries(self) -> int:
        """Total number of postings, an analytic memory proxy."""
        return int(self.values.shape[0])

    def nbytes(self) -> int:
        """Bytes held by the three arrays (what shared memory would carry)."""
        return int(self.offsets.nbytes + self.values.nbytes + self.keyed.nbytes)

    def close(self) -> None:
        """Release attached shared-memory segments (worker-side teardown).

        Meaningful only for indexes returned by :meth:`from_shared_memory`;
        a no-op (and idempotent) otherwise. The CSR views are replaced by
        empty arrays first — ``mmap`` refuses to unmap while buffer exports
        exist, and the views export ``shm.buf`` — so the index must not be
        probed afterwards. Never unlinks: the creator owns the segment
        names and reclaims them via :meth:`SharedCSRHandle.cleanup`.
        """
        shms, self._shms = self._shms, None
        if shms is None:
            return
        self.offsets = np.zeros(1, dtype=np.int64)
        self.values = np.zeros(0, dtype=np.int64)
        self.keyed = np.zeros(0, dtype=np.int64)
        for shm in shms:
            with contextlib.suppress(OSError, BufferError):  # pragma: no cover
                shm.close()

    # -- zero-copy sharing ------------------------------------------------

    #: Tag stamped into exported handles; :func:`attach_shared_index`
    #: dispatches on it when a worker reattaches.
    _SHARE_KIND = "csr"

    def _shared_arrays(self) -> Tuple[np.ndarray, ...]:
        """The arrays a shared-memory export carries, in attach order."""
        return (self.offsets, self.values, self.keyed)

    def to_shared_memory(self) -> SharedCSRHandle:
        """Copy the backing arrays into shared memory and return the ticket.

        Only global indexes (contiguous ``range`` universe) are shareable —
        exactly the ones :func:`repro.core.parallel.parallel_join` builds.
        The caller owns the returned handle and must call
        :meth:`SharedCSRHandle.cleanup` after the last consumer detaches.
        """
        if not isinstance(self.universe, range):
            raise InvalidParameterError(
                "only global CSR indexes (range universe) can be shared"
            )
        segments = []
        shms = []
        try:
            for arr in self._shared_arrays():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(arr.nbytes, 1)
                )
                shms.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[:] = arr
                segments.append((shm.name, arr.dtype.str, int(arr.shape[0])))
        except BaseException:
            for shm in shms:
                shm.close()
                with contextlib.suppress(FileNotFoundError):
                    shm.unlink()
            raise
        return SharedCSRHandle(
            tuple(segments),
            inf_sid=self.inf_sid,
            universe_len=len(self.universe),
            construction_cost=self._construction_cost,
            shms=tuple(shms),
            kind=self._SHARE_KIND,
        )

    @staticmethod
    def _attach_arrays(
        handle: SharedCSRHandle,
    ) -> Tuple[List[np.ndarray], Tuple[shared_memory.SharedMemory, ...]]:
        """Attach every segment of ``handle`` as a read-only array view.

        A partial attach — segment *k* failing after segments ``< k``
        mapped — closes the already-attached segments before re-raising,
        so no mapping outlives the exception.
        """
        attached: List[shared_memory.SharedMemory] = []
        try:
            for name, __, __ in handle.segments:
                attached.append(_attach_segment(name))
            arrays = []
            for shm, (__, dtype, length) in zip(attached, handle.segments):
                arr = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf)
                arr.flags.writeable = False
                arrays.append(arr)
        except BaseException:
            for shm in attached:
                shm.close()
            raise
        return arrays, tuple(attached)

    @classmethod
    def from_shared_memory(cls, handle: SharedCSRHandle) -> "CSRInvertedIndex":
        """Attach to segments created by :meth:`to_shared_memory` (zero-copy).

        The returned index keeps the attached segments alive until
        :meth:`close` is called (or the index is dropped). The worker side
        never unlinks.
        """
        arrays, shms = cls._attach_arrays(handle)
        offsets, values, keyed = arrays
        return _debug_check_csr(cls(
            offsets, values, keyed,
            inf_sid=handle.inf_sid,
            universe=range(handle.universe_len),
            construction_cost=handle.construction_cost,
            shms=shms,
        ))


#: Cap on bitmap rows per index: rows cost ``ceil(inf_sid / 64)`` words
#: each, and past the densest ~1k elements the probe traffic per extra row
#: no longer pays for the memory (Zipf mass concentrates hard at the top).
_MAX_DENSE_LISTS = 1024

#: Bits per bitmap word; rows are packed little-endian (bit ``sid & 63`` of
#: word ``sid >> 6`` is set iff ``sid`` is in the element's list).
_WORD_BITS = 64


class HybridInvertedIndex(CSRInvertedIndex):
    """CSR arrays plus uint64 bitmap rows for the densest inverted lists.

    The CSR layout of the base class is kept complete and authoritative —
    every element's postings live in ``values``/``keyed`` exactly as on the
    ``csr`` backend, so tree binding, ``record_probe``, pickling and the
    REPRO_CHECK layout checks all work unchanged. On top of it:

    * ``dense_ids``  — int64, sorted: the elements given a bitmap row;
    * ``dense_map``  — int64, length ``num_slots``: element → row index,
      ``-1`` for sparse elements (rebuilt locally, never shared);
    * ``bitmap``     — uint64, flat ``num_dense * words`` with
      ``words = ceil(inf_sid / 64)``; bit ``sid`` of row ``r`` (i.e. bit
      ``sid & 63`` of word ``r * words + (sid >> 6)``) is set iff
      ``sid ∈ I[dense_ids[r]]``.

    The hybrid kernel (:func:`repro.index.kernels
    .cross_cut_collection_hybrid`) answers probes against dense lists by
    masking at most two bitmap words and bit-scanning, falls back to the
    CSR ``keyed`` array for the rare cross-word gaps, and gallops the
    sparse lists from per-slot cursors — all while reproducing the exact
    candidate sequence of the scalar loop.

    An element goes dense when its list length reaches
    ``dense_threshold`` — by default the break-even density suggested by
    :func:`repro.core.estimate.element_frequency_profile` (≈ one posting
    per bitmap word) — capped at the :data:`_MAX_DENSE_LISTS` longest
    lists. Degenerate thresholds are legal: ``1`` packs every non-empty
    list, ``inf_sid + 1`` packs none (pure-CSR behaviour).
    """

    __slots__ = ("dense_ids", "dense_map", "bitmap", "bitmap_words")

    _SHARE_KIND = "hybrid"

    def __init__(
        self,
        offsets: np.ndarray,
        values: np.ndarray,
        keyed: np.ndarray,
        inf_sid: int,
        universe: Sequence[int],
        construction_cost: int = 0,
        shms: Optional[Tuple[shared_memory.SharedMemory, ...]] = None,
        *,
        dense_ids: np.ndarray,
        bitmap: np.ndarray,
    ) -> None:
        super().__init__(
            offsets, values, keyed, inf_sid, universe, construction_cost, shms
        )
        self.dense_ids = dense_ids
        self.bitmap = bitmap
        self.bitmap_words = (inf_sid + _WORD_BITS - 1) // _WORD_BITS
        # element -> bitmap row; local (rebuilt per attach), never shared.
        dense_map = np.full(self.num_slots, -1, dtype=np.int64)
        if dense_ids.shape[0]:
            dense_map[dense_ids] = np.arange(dense_ids.shape[0], dtype=np.int64)
        self.dense_map = dense_map

    # -- construction -----------------------------------------------------

    @classmethod
    def from_csr(
        cls,
        csr: CSRInvertedIndex,
        dense_threshold: Optional[int] = None,
        max_dense: int = _MAX_DENSE_LISTS,
    ) -> "HybridInvertedIndex":
        """Promote a CSR index: pick the dense lists, pack their bitmaps.

        The CSR arrays are adopted zero-copy (shared-memory views
        included — the bitmap is built locally from them); only the
        ``max_dense`` longest lists at or above ``dense_threshold`` get a
        row. ``dense_threshold=None`` asks
        :func:`repro.core.estimate.element_frequency_profile` for the
        break-even length.
        """
        counts = np.diff(csr.offsets)
        if dense_threshold is None:
            # Lazy import: core imports index; the reverse edge stays
            # call-time only.
            from ..core.estimate import element_frequency_profile

            profile = element_frequency_profile(
                counts[counts > 0].tolist(), num_sets=csr.inf_sid
            )
            dense_threshold = profile.suggested_threshold
        dense_threshold = max(int(dense_threshold), 1)
        dense_ids = np.flatnonzero(counts >= dense_threshold).astype(np.int64)
        if dense_ids.shape[0] > max_dense:
            densest = np.argsort(counts[dense_ids], kind="stable")[::-1][:max_dense]
            dense_ids = np.sort(dense_ids[densest])
        words = (csr.inf_sid + _WORD_BITS - 1) // _WORD_BITS
        bitmap = np.zeros(dense_ids.shape[0] * words, dtype=np.uint64)
        one = np.uint64(1)
        for row, element in enumerate(dense_ids.tolist()):
            sids = csr.values[
                csr.offsets[element]: csr.offsets[element + 1]
            ].astype(np.int64)
            np.bitwise_or.at(
                bitmap,
                row * words + (sids >> 6),
                np.left_shift(one, (sids & 63).astype(np.uint64)),
            )
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.hybrid_builds")
            reg.inc("index.hybrid_dense_lists", int(dense_ids.shape[0]))
        return _debug_check_hybrid(cls(
            csr.offsets, csr.values, csr.keyed,
            inf_sid=csr.inf_sid,
            universe=csr.universe,
            construction_cost=csr.construction_cost,
            shms=csr._shms,
            dense_ids=dense_ids,
            bitmap=bitmap,
        ))

    @classmethod
    def build(
        cls,
        s_collection: SetCollection,
        dense_threshold: Optional[int] = None,
        max_dense: int = _MAX_DENSE_LISTS,
    ) -> "HybridInvertedIndex":
        """Build the CSR arrays, then pack bitmaps for the dense lists."""
        return cls.from_csr(
            CSRInvertedIndex.build(s_collection),
            dense_threshold=dense_threshold,
            max_dense=max_dense,
        )

    @classmethod
    def from_index(
        cls,
        index: InvertedIndex,
        dense_threshold: Optional[int] = None,
        max_dense: int = _MAX_DENSE_LISTS,
    ) -> "HybridInvertedIndex":
        """Repack an :class:`InvertedIndex` (global or local) hybrid-style."""
        return cls.from_csr(
            CSRInvertedIndex.from_index(index),
            dense_threshold=dense_threshold,
            max_dense=max_dense,
        )

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> Tuple[Any, ...]:  # type: ignore[override]
        return super().__getstate__() + (
            np.asarray(self.dense_ids),
            np.asarray(self.bitmap),
        )

    def __setstate__(self, state: Tuple[Any, ...]) -> None:  # type: ignore[override]
        offsets, values, keyed, inf_sid, universe, cost, dense_ids, bitmap = state
        self.__init__(  # type: ignore[misc]
            offsets, values, keyed, inf_sid, universe, cost,
            dense_ids=dense_ids, bitmap=bitmap,
        )

    # -- accessors --------------------------------------------------------

    @property
    def num_dense(self) -> int:
        """Number of elements carrying a bitmap row."""
        return int(self.dense_ids.shape[0])

    def supersets_of(self, record: Sequence[int]) -> np.ndarray:
        """Bitmap-accelerated point query.

        Dense elements contribute by AND-ing their bitmap rows word-wise —
        ``O(inf_sid / 64)`` per dense element regardless of list length,
        which is exactly where the CSR intersection is weakest. Sparse
        elements intersect as in the base class; the AND-ed mask then
        filters the survivors with one shift per candidate. An all-dense
        record never touches the CSR arrays at all: the mask is bit-scanned
        directly (``np.unpackbits`` over the little-endian word bytes).
        """
        elems = sorted({int(e) for e in record})
        if not elems:
            return np.arange(self.inf_sid, dtype=np.int64)
        words = self.bitmap_words
        mask: Optional[np.ndarray] = None
        sparse: List[np.ndarray] = []
        for e in elems:
            row = int(self.dense_map[e]) if 0 <= e < self.num_slots else -1
            if row >= 0:
                row_words = self.bitmap[row * words: (row + 1) * words]
                if mask is None:
                    mask = row_words.copy()
                else:
                    mask &= row_words
            else:
                lst = self.get_list(e)
                if lst.shape[0] == 0:
                    return np.zeros(0, dtype=np.int64)
                sparse.append(lst)
        if sparse:
            sparse.sort(key=lambda lst: lst.shape[0])
            cand = sparse[0].astype(np.int64)
            for lst in sparse[1:]:
                if cand.shape[0] == 0:
                    break
                idx = np.searchsorted(lst, cand)
                np.minimum(idx, lst.shape[0] - 1, out=idx)
                cand = cand[lst[idx] == cand]
            if mask is not None and cand.shape[0]:
                # uint64 >> int64 would promote to float; keep both uint64.
                bits = np.right_shift(
                    mask[cand >> 6], (cand & 63).astype(np.uint64)
                )
                cand = cand[(bits & np.uint64(1)) != 0]
            return cand
        if mask is None or not mask.shape[0]:
            return np.zeros(0, dtype=np.int64)
        bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.inf_sid]).astype(np.int64)

    def nbytes(self) -> int:
        """CSR bytes plus the bitmap rows and the dense-id table."""
        return int(
            super().nbytes() + self.dense_ids.nbytes + self.bitmap.nbytes
        )

    def close(self) -> None:
        """Release attached segments; also drops the bitmap views."""
        if self._shms is not None:
            self.dense_ids = np.zeros(0, dtype=np.int64)
            self.bitmap = np.zeros(0, dtype=np.uint64)
            self.dense_map = np.zeros(0, dtype=np.int64)
        super().close()

    # -- zero-copy sharing ------------------------------------------------

    def _shared_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.offsets, self.values, self.keyed,
                self.dense_ids, self.bitmap)

    @classmethod
    def from_shared_memory(cls, handle: SharedCSRHandle) -> "HybridInvertedIndex":
        """Attach a hybrid export: CSR arrays + dense ids + bitmap rows."""
        if handle.kind != cls._SHARE_KIND:
            raise InvalidParameterError(
                f"handle carries a {handle.kind!r} index, not 'hybrid'"
            )
        arrays, shms = cls._attach_arrays(handle)
        offsets, values, keyed, dense_ids, bitmap = arrays
        return _debug_check_hybrid(cls(
            offsets, values, keyed,
            inf_sid=handle.inf_sid,
            universe=range(handle.universe_len),
            construction_cost=handle.construction_cost,
            shms=shms,
            dense_ids=dense_ids,
            bitmap=bitmap,
        ))


def attach_shared_index(handle: SharedCSRHandle) -> CSRInvertedIndex:
    """Reattach a shared index of whatever kind the handle carries."""
    if handle.kind == HybridInvertedIndex._SHARE_KIND:
        return HybridInvertedIndex.from_shared_memory(handle)
    return CSRInvertedIndex.from_shared_memory(handle)


def _check_key_space(num_slots: int, stride: int) -> None:
    """Composite keys must fit int64 with headroom for the probe targets."""
    if num_slots and (num_slots + 1) * stride >= 2**63:
        raise InvalidParameterError(
            "element universe x set count too large for the CSR composite "
            f"key space ({num_slots} slots x stride {stride}); use the "
            "python backend"
        )


# -- incremental maintenance (delta segment + tombstones + epoch swaps) -------

#: A delta may grow to this many tokens before the ``delta_ratio`` trigger
#: applies, so a small (or empty) base does not force a rebuild per append.
_DELTA_TOKEN_FLOOR = 4096

#: Bytes-per-token model for the python-object delta (list slot + boxed int
#: + dict overhead amortised); only used for admission-control estimates.
_DELTA_TOKEN_BYTES = 64


class DeltaSegment:
    """The mutable in-memory tail of an :class:`IncrementalIndex`.

    Appends land here as plain python postings lists per element. Sids are
    handed out monotonically, so appending keeps every list sorted — the
    same invariant :meth:`repro.index.inverted.InvertedIndex.append_set`
    relies on. A delta stays small by construction: compaction folds it
    into the frozen CSR base once it outgrows ``delta_ratio`` of the base.
    """

    __slots__ = ("postings", "records", "tokens")

    def __init__(self) -> None:
        self.postings: Dict[int, List[int]] = {}
        self.records: Dict[int, Tuple[int, ...]] = {}
        self.tokens = 0

    def append(self, sid: int, record: Tuple[int, ...]) -> None:
        """Add one canonical (sorted, deduped) record under ``sid``."""
        for e in record:
            self.postings.setdefault(e, []).append(sid)
        self.records[sid] = record
        self.tokens += len(record)

    def supersets_of(self, elems: Sequence[int], sid_bound: int) -> List[int]:
        """Delta sids ``< sid_bound`` whose record contains every element.

        ``elems`` must be sorted and deduplicated. Candidates come from
        the shortest posting list; each is verified against its record
        tuple by binary search. Output is ascending (postings are).
        """
        smallest: Optional[List[int]] = None
        for e in elems:
            lst = self.postings.get(e)
            if not lst:
                return []
            if smallest is None or len(lst) < len(smallest):
                smallest = lst
        if smallest is None:
            # Empty query: every set is a superset of the empty set.
            # ``records`` iterates in insertion order == ascending sid.
            return [sid for sid in self.records if sid < sid_bound]
        out: List[int] = []
        for sid in smallest:
            if sid >= sid_bound:
                break
            rec = self.records[sid]
            if all(contains_sorted(rec, e) for e in elems):
                out.append(sid)
        return out


class IndexSnapshot:
    """An immutable epoch view over an :class:`IncrementalIndex`.

    ``base`` (with its position → external-sid map ``base_sids``) is a
    frozen CSR/hybrid index over the records that were live at the last
    compaction; ``delta`` holds everything appended since. ``sid_bound``
    pins the append high-watermark — later appends mutate the shared delta
    postings but are filtered here — and ``tombstones`` is a frozen copy
    of the deletes. A compaction replaces the writer's base *and* delta
    with brand-new objects, so a pinned snapshot keeps serving exactly the
    state it captured, without blocking and without ever observing a
    half-compacted structure.
    """

    __slots__ = ("epoch", "base", "base_sids", "delta", "sid_bound", "tombstones")

    def __init__(
        self,
        epoch: int,
        base: CSRInvertedIndex,
        base_sids: np.ndarray,
        delta: DeltaSegment,
        sid_bound: int,
        tombstones: FrozenSet[int],
    ) -> None:
        self.epoch = epoch
        self.base = base
        self.base_sids = base_sids
        self.delta = delta
        self.sid_bound = sid_bound
        self.tombstones = tombstones

    def supersets_of(self, record: Sequence[int]) -> List[int]:
        """External sids of live sets containing every element of ``record``.

        Ascending: base positions map through the ascending ``base_sids``,
        every delta sid postdates every base sid, and tombstones only
        remove entries.
        """
        elems = sorted({int(e) for e in record})
        hits: List[int] = []
        if self.base.inf_sid:
            positions = self.base.supersets_of(elems)
            if positions.shape[0]:
                hits = self.base_sids[positions].tolist()
        hits.extend(self.delta.supersets_of(elems, self.sid_bound))
        tomb = self.tombstones
        if tomb:
            hits = [s for s in hits if s not in tomb]
        return hits


class IncrementalIndex:
    """A mutable set-containment index: frozen base + delta + tombstones.

    The resident server's workhorse. Writes:

    * :meth:`append` assigns the next sid and lands the record in the
      mutable :class:`DeltaSegment`;
    * :meth:`delete` tombstones a sid (base and delta alike);
    * :meth:`compact` rebuilds the frozen base from every live record,
      drops the delta and the tombstones, and bumps the epoch. It runs
      automatically once tombstones exceed ``compact_ratio`` of the live
      population (generalising the broker's scheme) or the delta outgrows
      ``delta_ratio`` of the base's postings.

    Reads go through :meth:`snapshot` (see :class:`IndexSnapshot`); the
    single-writer, non-interleaved-walk contract of
    :class:`~repro.index.prefix_tree.TrieSnapshot` applies here too.

    External sids are dense from 0 and stable across compactions: the base
    packs live records in ascending sid order and ``base_sids`` maps base
    positions back to external sids.
    """

    def __init__(
        self,
        s_collection: Optional[SetCollection] = None,
        *,
        backend: str = "csr",
        compact_ratio: float = 0.5,
        delta_ratio: float = 0.25,
        auto_compact: bool = True,
        dense_threshold: Optional[int] = None,
    ) -> None:
        if backend not in ("csr", "hybrid"):
            raise InvalidParameterError(
                f"backend must be 'csr' or 'hybrid', got {backend!r}"
            )
        if not 0.0 < compact_ratio <= 1.0:
            raise InvalidParameterError(
                f"compact_ratio must be in (0, 1], got {compact_ratio}"
            )
        if delta_ratio <= 0.0:
            raise InvalidParameterError(
                f"delta_ratio must be positive, got {delta_ratio}"
            )
        self._backend = backend
        self._compact_ratio = compact_ratio
        self._delta_ratio = delta_ratio
        self._auto_compact = auto_compact
        self._dense_threshold = dense_threshold
        self._live: Dict[int, Tuple[int, ...]] = {}
        if s_collection is not None:
            for sid, rec in enumerate(s_collection.records):
                self._live[sid] = rec
        self._next_sid = len(self._live)
        self._base, self._base_sids = self._build_base()
        self._delta = DeltaSegment()
        self._tombstones: Set[int] = set()
        # Tombstoned records keep their payload here until the next
        # compaction: the frozen base still carries their postings, and
        # :meth:`dump_state` must serialize the base *content* (not just
        # the live view) to reproduce identical CSR arrays on restore.
        self._dead_records: Dict[int, Tuple[int, ...]] = {}
        self._epoch = 0

    def _build_base(self) -> Tuple[CSRInvertedIndex, np.ndarray]:
        pairs = sorted(self._live.items())
        collection = SetCollection((rec for _, rec in pairs), validate=False)
        if not pairs or self._backend == "csr":
            # An empty hybrid base degenerates to CSR: there is nothing to
            # profile for a dense threshold and nothing to pack.
            base: CSRInvertedIndex = CSRInvertedIndex.build(collection)
        else:
            base = HybridInvertedIndex.build(
                collection, dense_threshold=self._dense_threshold
            )
        base_sids = np.fromiter(
            (sid for sid, _ in pairs), dtype=np.int64, count=len(pairs)
        )
        return base, base_sids

    # -- introspection ------------------------------------------------------

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def epoch(self) -> int:
        """Bumped by every compaction; snapshots carry the epoch they pin."""
        return self._epoch

    @property
    def num_tombstones(self) -> int:
        return len(self._tombstones)

    @property
    def delta_tokens(self) -> int:
        return self._delta.tokens

    def __len__(self) -> int:
        """Live records (appends minus deletes)."""
        return len(self._live)

    def get_record(self, sid: int) -> Optional[Tuple[int, ...]]:
        """The live record under ``sid``, or None if absent/tombstoned."""
        return self._live.get(sid)

    def nbytes(self) -> int:
        """Approximate resident bytes: exact for the frozen arrays, a
        per-token object model for the python delta. Admission control's
        input."""
        delta_bytes = _DELTA_TOKEN_BYTES * (
            self._delta.tokens + len(self._delta.records)
        )
        return (
            self._base.nbytes() + int(self._base_sids.nbytes) + delta_bytes
        )

    # -- mutation -----------------------------------------------------------

    def append(self, record: Sequence[int]) -> int:
        """Append one set; returns its (dense, stable) sid."""
        rec = tuple(sorted({int(e) for e in record}))
        if not rec:
            raise InvalidParameterError("cannot append an empty set")
        if rec[0] < 0:
            raise InvalidParameterError(
                f"element ids must be non-negative, got {rec[0]}"
            )
        sid = self._next_sid
        self._next_sid = sid + 1
        self._live[sid] = rec
        self._delta.append(sid, rec)
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.incremental_appends")
        if self._auto_compact and self._delta.tokens > self._delta_ratio * max(
            self._base.size_in_entries(), _DELTA_TOKEN_FLOOR
        ):
            self.compact()
        return sid

    def delete(self, sid: int) -> bool:
        """Tombstone one sid; True if it was live (no-op otherwise)."""
        record = self._live.pop(sid, None)
        if record is None:
            return False
        self._tombstones.add(sid)
        self._dead_records[sid] = record
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.incremental_deletes")
        if self._auto_compact and len(
            self._tombstones
        ) > self._compact_ratio * max(len(self._live), 1):
            self.compact()
        return True

    def compact(self) -> int:
        """Fold delta + tombstones into a fresh base; bump the epoch.

        Pinned snapshots keep the old base/delta objects and stay fully
        readable throughout.
        """
        self._base, self._base_sids = self._build_base()
        self._delta = DeltaSegment()
        self._tombstones = set()
        self._dead_records = {}
        self._epoch += 1
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.incremental_compactions")
        return self._epoch

    # -- serialization -------------------------------------------------------

    def dump_state(self) -> Dict[str, object]:
        """The exact logical state as JSON-serializable primitives.

        ``base`` lists the records the frozen base was built from — the
        live-at-last-compaction set, *including* records tombstoned since
        (their postings are still packed in the CSR arrays, so they are
        part of the byte-exact footprint). ``delta`` lists every record
        appended since the last compaction, tombstoned or not, in append
        order. :meth:`restore_state` replays this into a structurally
        identical index: same arrays, same ``nbytes``, same epoch.
        """
        base: List[List[object]] = []
        for sid in self._base_sids.tolist():
            record = self._live.get(sid)
            if record is None:
                record = self._delta.records.get(sid)
            if record is None:
                record = self._dead_records[sid]
            base.append([sid, list(record)])
        return {
            "epoch": self._epoch,
            "next_sid": self._next_sid,
            "base": base,
            "delta": [
                [sid, list(record)]
                for sid, record in self._delta.records.items()
            ],
            "tombstones": sorted(self._tombstones),
        }

    @classmethod
    def restore_state(
        cls,
        payload: Mapping[str, object],
        *,
        backend: str = "csr",
        compact_ratio: float = 0.5,
        delta_ratio: float = 0.25,
        auto_compact: bool = True,
        dense_threshold: Optional[int] = None,
    ) -> "IncrementalIndex":
        """Rebuild the exact index a :meth:`dump_state` payload captured.

        Construction order mirrors the live history: the base is built
        from the dumped base records alone, the delta is re-appended on
        top, then tombstones are re-applied — so postings, ``base_sids``
        and the delta's token counts come out identical without ever
        consulting the auto-compaction triggers.
        """
        index = cls(
            None,
            backend=backend,
            compact_ratio=compact_ratio,
            delta_ratio=delta_ratio,
            auto_compact=auto_compact,
            dense_threshold=dense_threshold,
        )
        index._live = {
            int(sid): tuple(int(e) for e in record)
            for sid, record in payload["base"]  # type: ignore[union-attr]
        }
        index._base, index._base_sids = index._build_base()
        for sid, record in payload["delta"]:  # type: ignore[union-attr]
            rec = tuple(int(e) for e in record)
            index._live[int(sid)] = rec
            index._delta.append(int(sid), rec)
        for sid in payload["tombstones"]:  # type: ignore[union-attr]
            record = index._live.pop(int(sid), None)
            index._tombstones.add(int(sid))
            if record is not None:
                index._dead_records[int(sid)] = record
        index._next_sid = int(payload["next_sid"])  # type: ignore[arg-type]
        index._epoch = int(payload["epoch"])  # type: ignore[arg-type]
        return index

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> IndexSnapshot:
        """Pin the current epoch for reading (cheap: no array copies)."""
        return IndexSnapshot(
            self._epoch,
            self._base,
            self._base_sids,
            self._delta,
            self._next_sid,
            frozenset(self._tombstones),
        )

    def supersets_of(self, record: Sequence[int]) -> List[int]:
        """Query the current state through a fresh snapshot."""
        return self.snapshot().supersets_of(record)
