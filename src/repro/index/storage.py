"""Binary persistence for collections and indexes.

Text files (:mod:`repro.data.io`) are the interchange format; this module
is the *fast path*: a compact little-endian binary layout so a prebuilt
inverted index (or a big collection) loads in milliseconds instead of being
re-parsed and re-built per process — the difference between "run one join"
and "serve queries".

Layout (all integers little-endian):

* collection file: magic ``RSC1`` · u64 count · per record: u32 length +
  u64 element ids;
* index file: magic ``RIX1`` · u64 inf_sid · u64 universe length + u64 ids
  (``0xFFFF_FFFF_FFFF_FFFF`` in the length slot marks a contiguous
  ``range`` universe, stored as just its end) · u64 list count · per list:
  u64 element + u32 length + u64 sids.

Numpy handles the bulk (de)serialisation, so costs are I/O-bound.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, List, Sequence

import numpy as np

from ..data.collection import SetCollection
from ..errors import DatasetError
from .inverted import InvertedIndex

__all__ = [
    "save_collection_binary",
    "load_collection_binary",
    "save_index",
    "load_index",
]

_COLLECTION_MAGIC = b"RSC1"
_INDEX_MAGIC = b"RIX1"
_RANGE_SENTINEL = 0xFFFF_FFFF_FFFF_FFFF


def _write_ids(handle: BinaryIO, ids: Sequence[int]) -> None:
    np.asarray(ids, dtype="<u8").tofile(handle)


def _read_ids(handle: BinaryIO, count: int) -> List[int]:
    data = np.fromfile(handle, dtype="<u8", count=count)
    if len(data) != count:
        raise DatasetError("binary file truncated")
    return data.tolist()


def save_collection_binary(collection: SetCollection, path: str) -> None:
    """Write a collection in the ``RSC1`` binary layout."""
    with open(path, "wb") as handle:
        handle.write(_COLLECTION_MAGIC)
        handle.write(struct.pack("<Q", len(collection)))
        lengths = np.fromiter(
            (len(rec) for rec in collection), dtype="<u4", count=len(collection)
        )
        lengths.tofile(handle)
        flat: List[int] = []
        for record in collection:
            flat.extend(record)
        _write_ids(handle, flat)


def load_collection_binary(path: str) -> SetCollection:
    """Read a collection written by :func:`save_collection_binary`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _COLLECTION_MAGIC:
            raise DatasetError(
                f"{path}: not a binary set collection (magic {magic!r})"
            )
        (count,) = struct.unpack("<Q", handle.read(8))
        lengths = np.fromfile(handle, dtype="<u4", count=count)
        if len(lengths) != count:
            raise DatasetError(f"{path}: truncated length table")
        flat = np.fromfile(handle, dtype="<u8", count=int(lengths.sum()))
        if len(flat) != lengths.sum():
            raise DatasetError(f"{path}: truncated record data")
    records = []
    offset = 0
    for n in lengths:
        records.append(flat[offset: offset + n].tolist())
        offset += int(n)
    return SetCollection(records, validate=False)


def save_index(index: InvertedIndex, path: str) -> None:
    """Write an inverted index in the ``RIX1`` binary layout."""
    with open(path, "wb") as handle:
        handle.write(_INDEX_MAGIC)
        handle.write(struct.pack("<Q", index.inf_sid))
        universe = index.universe
        if isinstance(universe, range) and universe == range(len(universe)):
            handle.write(struct.pack("<Q", _RANGE_SENTINEL))
            handle.write(struct.pack("<Q", len(universe)))
        else:
            handle.write(struct.pack("<Q", len(universe)))
            _write_ids(handle, list(universe))
        handle.write(struct.pack("<Q", len(index.lists)))
        for element in sorted(index.lists):
            lst = index.lists[element]
            handle.write(struct.pack("<QI", element, len(lst)))
            _write_ids(handle, lst)


def load_index(path: str) -> InvertedIndex:
    """Read an index written by :func:`save_index`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _INDEX_MAGIC:
            raise DatasetError(f"{path}: not a binary index (magic {magic!r})")
        (inf_sid,) = struct.unpack("<Q", handle.read(8))
        (universe_len,) = struct.unpack("<Q", handle.read(8))
        if universe_len == _RANGE_SENTINEL:
            (end,) = struct.unpack("<Q", handle.read(8))
            universe: Sequence[int] = range(end)
        else:
            universe = _read_ids(handle, universe_len)
        (num_lists,) = struct.unpack("<Q", handle.read(8))
        lists: Dict[int, List[int]] = {}
        for __ in range(num_lists):
            header = handle.read(12)
            if len(header) != 12:
                raise DatasetError(f"{path}: truncated list header")
            element, length = struct.unpack("<QI", header)
            lists[element] = _read_ids(handle, length)
    return InvertedIndex(lists, universe, inf_sid)
