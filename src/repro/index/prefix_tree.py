"""Prefix tree (trie) over the subset-side collection ``R`` (paper §IV-A).

Each set in ``R`` is inserted with its elements sorted in a global order
(descending frequency by default), so sets sharing a prefix share tree
nodes and the tree-based join shares their inverted-list probes.

Two deviations from the paper's idealised picture, both forced by real data:

* **End-marker leaves.** The paper assumes every set corresponds to a unique
  leaf. Real collections contain duplicate sets and sets that are prefixes
  of other sets. We terminate every inserted set with an *end-marker* child
  node that carries the set ids (``terminal_rids``). An end-marker has no
  element; during the join its "inverted list" is the index's universe id
  list, so a probe on it always hits and Algorithms 2/3 run unmodified.
* **Multi-element nodes.** The paper notes the prefix tree can be replaced
  by a Patricia tree (radix trie) where single-child chains are merged. A
  node therefore carries a *tuple* of elements; the join probes the
  candidate in each of the node's lists. :meth:`PrefixTree.compress`
  performs the merge in place.

Join-time state (``max_sid``, ``next_max``, ``rid_list``, per-list cursors)
lives on the nodes and is (re)initialised by the join driver, so one tree can
be reused across runs and across partition-local indexes.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.order import GlobalOrder
from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from ..obs import registry as _obs

__all__ = ["TreeNode", "PrefixTree", "TrieSnapshot", "IncrementalPrefixTree"]

#: Shared empty rid-list; identity-compared nowhere, equality everywhere.
_EMPTY: Tuple[int, ...] = ()


class TreeNode:
    """One node of the prefix tree.

    ``elements`` is empty for the root and for end-marker leaves, a single
    element for ordinary prefix-tree nodes, and several elements for merged
    (Patricia) nodes. ``terminal_rids`` is non-None exactly on end-marker
    leaves and lists every ``R`` id whose set ends here (duplicates share).
    """

    __slots__ = (
        "elements",
        "children",
        "child_map",
        "terminal_rids",
        # join-time state, initialised by the join driver's bind step (not
        # here: skipping the writes keeps tree construction lean) ----------
        "inv",        # primary inverted list (or the index universe)
        "cur",        # cursor into ``inv``
        "more_invs",  # extra lists for merged Patricia nodes, else None
        "more_curs",
        "max_sid",
        "next_max",
        "rid_list",
        "heap",
        "only_child",
    )

    def __init__(self, elements: Tuple[int, ...] = ()) -> None:
        self.elements: Tuple[int, ...] = elements
        self.children: List["TreeNode"] = []
        self.child_map: Optional[Dict[int, "TreeNode"]] = None
        self.terminal_rids: Optional[List[int]] = None

    @property
    def is_end_marker(self) -> bool:
        """True for the virtual leaves that carry set ids."""
        return self.terminal_rids is not None

    def __repr__(self) -> str:
        tag = f"rids={self.terminal_rids}" if self.is_end_marker else f"e={self.elements}"
        return f"TreeNode({tag}, {len(self.children)} children)"


class PrefixTree:
    """Prefix tree over ``R`` under a :class:`~repro.core.order.GlobalOrder`."""

    def __init__(self, order: GlobalOrder) -> None:
        self.order = order
        self.root = TreeNode()
        self.root.child_map = {}
        self.num_sets = 0
        self.num_nodes = 1  # the root
        self.compressed = False
        # Distinct elements per partition anchor (first element), collected
        # during insertion so the partitioned joins (§V) can build local
        # indexes without re-walking each subtree.
        self.partition_elements: Dict[int, set] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        r_collection: SetCollection,
        order: GlobalOrder,
        compress: bool = False,
    ) -> "PrefixTree":
        """Insert every set of ``R`` (elements sorted in the global order).

        With ``compress=True`` the tree is path-compressed into a Patricia
        tree after construction.
        """
        tree = cls(order)
        for rid, record in enumerate(r_collection):
            tree.insert(order.sort_record(record), rid)
        if compress:
            tree.compress()
        tree.freeze()
        return tree

    def insert(self, sorted_elements: Sequence[int], rid: int) -> None:
        """Insert one set (already sorted in the global order) with id ``rid``."""
        node = self.root
        if sorted_elements:
            anchor_elements = self.partition_elements.get(sorted_elements[0])
            if anchor_elements is None:
                self.partition_elements[sorted_elements[0]] = set(sorted_elements)
            else:
                anchor_elements.update(sorted_elements)
        for e in sorted_elements:
            cmap = node.child_map
            if cmap is None:
                # Fresh node, or one whose map was dropped by freeze():
                # rebuild from the existing children.
                cmap = {c.elements[0]: c for c in node.children if c.elements}
                node.child_map = cmap
            child = cmap.get(e)
            if child is None:
                child = TreeNode((e,))
                cmap[e] = child
                node.children.append(child)
                self.num_nodes += 1
            node = child
        end = None
        for c in node.children:
            if c.is_end_marker:
                end = c
                break
        if end is None:
            end = TreeNode()
            end.terminal_rids = []
            # End-markers first: they are the cheapest children to finalize.
            node.children.insert(0, end)
            self.num_nodes += 1
        end.terminal_rids.append(rid)
        self.num_sets += 1

    def freeze(self) -> None:
        """Drop the per-node child dictionaries once insertion is done.

        ``child_map`` only serves :meth:`insert`; the joins walk
        ``children`` directly. A dict per inner node is a large share of
        the tree's footprint (Fig 10 measures peak memory), so a frozen
        tree is substantially smaller. Inserting after freezing rebuilds
        the map lazily.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            node.child_map = None
            stack.extend(node.children)

    def compress(self) -> None:
        """Merge single-child chains in place (Patricia / radix trie, §IV-A).

        A node with exactly one child absorbs that child's elements and
        children, provided neither is an end-marker (end-markers carry rids
        and the root must stay element-free).
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is not self.root and not node.is_end_marker:
                while len(node.children) == 1 and not node.children[0].is_end_marker:
                    child = node.children[0]
                    node.elements = node.elements + child.elements
                    node.children = child.children
                    node.child_map = child.child_map
                    self.num_nodes -= 1
            stack.extend(node.children)
        self.compressed = True

    # -- incremental rebuild ------------------------------------------------

    def live_paths(
        self, dead: AbstractSet[int]
    ) -> Iterator[Tuple[Tuple[int, ...], List[int]]]:
        """``(path elements in tree order, surviving rids)`` per end-marker.

        Paths accumulate the element tuples along each root-to-end-marker
        walk, so they come out already sorted in ``self.order`` (for
        Patricia trees the merged tuples concatenate back into the original
        ordered prefix). End-markers whose rids are all in ``dead`` are
        skipped entirely.
        """
        stack: List[Tuple[TreeNode, Tuple[int, ...]]] = [(self.root, ())]
        while stack:
            node, prefix = stack.pop()
            for child in node.children:
                rids = child.terminal_rids
                if rids is not None:
                    live = [r for r in rids if r not in dead]
                    if live:
                        yield prefix, live
                else:
                    stack.append((child, prefix + child.elements))

    def compacted(self, dead: AbstractSet[int]) -> "PrefixTree":
        """A fresh tree without the ``dead`` rids; ``self`` is untouched.

        This is the build half of the epoch-swap scheme used by
        :class:`IncrementalPrefixTree`: the caller keeps serving reads from
        ``self`` while the survivor sets are re-inserted into a new tree,
        then swaps the reference. Paths from :meth:`live_paths` are already
        in tree order, so no re-sort happens here. The new tree shares
        ``self.order`` and is re-compressed when ``self`` was.
        """
        tree = PrefixTree(self.order)
        for prefix, rids in self.live_paths(dead):
            for rid in rids:
                tree.insert(prefix, rid)
        if self.compressed:
            tree.compress()
        tree.freeze()
        return tree

    # -- introspection -----------------------------------------------------

    def iter_nodes(self) -> Iterable[TreeNode]:
        """All nodes, root included, in DFS order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def depth(self) -> int:
        """Longest root-to-leaf path length (in nodes below the root)."""
        best = 0
        stack: List[Tuple[TreeNode, int]] = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            if not node.children and d > best:
                best = d
            for c in node.children:
                stack.append((c, d + 1))
        return best

    def distinct_elements(self) -> set:
        """The element ids appearing anywhere in the tree."""
        out: set = set()
        for node in self.iter_nodes():
            out.update(node.elements)
        return out

    def partition_roots(self) -> List[Tuple[int, "TreeNode"]]:
        """The root's element children as ``(anchor_element, subtree)`` pairs.

        The paper's partitioner (§V-A) groups ``R`` sets by their smallest
        element in the global order — which is exactly the subtree rooted at
        each child of the tree root. End-marker children of the root (sets
        that are empty after ordering — impossible for valid input) are
        excluded.
        """
        return [
            (c.elements[0], c) for c in self.root.children if not c.is_end_marker
        ]


# -- incremental maintenance (epoch-swapped snapshots) ------------------------


class TrieSnapshot:
    """An immutable epoch view over an :class:`IncrementalPrefixTree`.

    The snapshot pins the tree object, a frozen copy of the tombstone set
    and the rid high-watermark at creation time. Later inserts land in the
    shared tree but carry rids ``>= rid_bound`` and are filtered at the
    end-markers; later deletes mutate the writer's tombstone set, not the
    frozen copy here; and a compaction swaps the writer onto a *new* tree,
    leaving this one intact. A pinned reader therefore never blocks and
    never observes a half-compacted structure.

    The contract is single-writer, non-interleaved walks: a
    :meth:`subsets_of` traversal must not be suspended mid-iteration while
    the writer mutates (the serve loop guarantees this by handling requests
    to completion, one at a time).
    """

    __slots__ = ("epoch", "tree", "dead", "rid_bound", "live_count")

    def __init__(
        self,
        epoch: int,
        tree: PrefixTree,
        dead: FrozenSet[int],
        rid_bound: int,
        live_count: int,
    ) -> None:
        self.epoch = epoch
        self.tree = tree
        self.dead = dead
        self.rid_bound = rid_bound
        self.live_count = live_count

    def subsets_of(self, elements: Iterable[int]) -> List[int]:
        """Rids of live stored sets that are subsets of ``elements``.

        The walk descends only through children whose elements all appear
        in the event — the same traversal as ``Broker.publish`` — so the
        cost is proportional to the part of the tree the event covers, not
        to the number of stored sets.
        """
        ids: Set[int] = set(elements)
        dead = self.dead
        bound = self.rid_bound
        out: List[int] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                rids = child.terminal_rids
                if rids is not None:
                    out.extend(r for r in rids if r < bound and r not in dead)
                elif all(e in ids for e in child.elements):
                    stack.append(child)
        out.sort()
        return out

    def __len__(self) -> int:
        return self.live_count


class IncrementalPrefixTree:
    """A prefix tree with inserts, tombstone deletes and epoch compaction.

    Generalises the pubsub broker's ``compact_ratio`` scheme (the broker
    keeps its own deferred-drop variant because its matching walk runs
    inside the writer object itself): inserts go straight into the live
    tree under a dense, monotone rid discipline; deletes are tombstones;
    and once tombstones exceed ``compact_ratio`` of the live population the
    tree is rebuilt without them via :meth:`PrefixTree.compacted` and
    swapped in under a new epoch. Readers hold :meth:`snapshot` views and
    are never invalidated by the swap.

    Elements are non-negative ints ordered by an identity
    :class:`~repro.core.order.GlobalOrder` that grows with the universe —
    frequency tuning is pointless under churn, exactly as in the broker.
    """

    def __init__(
        self, compact_ratio: float = 0.5, *, auto_compact: bool = True
    ) -> None:
        if not 0.0 < compact_ratio <= 1.0:
            raise InvalidParameterError(
                f"compact_ratio must be in (0, 1], got {compact_ratio}"
            )
        self._order = GlobalOrder([], "element_id")
        self._tree = PrefixTree(self._order)
        self._dead: Set[int] = set()
        # Live rids by membership, not by count: after a compaction wipes
        # the tombstone set, a count alone cannot tell "already compacted
        # away" from "still live" for an old rid.
        self._members: Set[int] = set()
        self._epoch = 0
        self._next_rid = 0
        self._compact_ratio = compact_ratio
        self._auto_compact = auto_compact

    # -- introspection ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Bumped by every compaction; snapshots carry the epoch they pin."""
        return self._epoch

    @property
    def live_count(self) -> int:
        return len(self._members)

    @property
    def dead_count(self) -> int:
        return len(self._dead)

    @property
    def tree(self) -> PrefixTree:
        """The live tree (for footprint metering; do not mutate)."""
        return self._tree

    def __len__(self) -> int:
        return len(self._members)

    # -- mutation -----------------------------------------------------------

    def insert(self, elements: Iterable[int], rid: Optional[int] = None) -> int:
        """Insert one set; returns its rid.

        Rids are assigned densely from 0. Passing ``rid`` explicitly is an
        assert-sync seam for callers that mirror another structure's id
        space (the serve layer keeps trie rids equal to index sids): it
        must equal the next dense rid or the call raises.
        """
        record = sorted({int(e) for e in elements})
        if not record:
            raise InvalidParameterError("cannot insert an empty set")
        if record[0] < 0:
            raise InvalidParameterError(
                f"element ids must be non-negative, got {record[0]}"
            )
        if rid is None:
            rid = self._next_rid
        elif rid != self._next_rid:
            raise InvalidParameterError(
                f"rids are dense and monotone: expected {self._next_rid}, "
                f"got {rid}"
            )
        self._next_rid = rid + 1
        self._order.extend_to(record[-1] + 1)
        self._tree.insert(self._order.sort_record(record), rid)
        self._members.add(rid)
        return rid

    def mark_dead(self, rid: int) -> bool:
        """Tombstone one rid; True if it was live.

        A clean no-op (returns False) for rids never issued or already
        dead. Crossing the ``compact_ratio`` threshold triggers an
        immediate compaction when ``auto_compact`` is on.
        """
        if rid not in self._members:
            return False
        self._members.discard(rid)
        self._dead.add(rid)
        if self._auto_compact and len(self._dead) > self._compact_ratio * max(
            len(self._members), 1
        ):
            self.compact()
        return True

    def compact(self) -> int:
        """Rebuild without tombstones, swap the tree in, bump the epoch.

        Existing snapshots keep the old tree and stay fully readable
        throughout; only readers that take a *new* snapshot see the new
        epoch.
        """
        self._tree = self._tree.compacted(self._dead)
        self._dead = set()
        self._epoch += 1
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("tree.trie_compactions")
        return self._epoch

    # -- serialization -------------------------------------------------------

    def dump_state(self) -> Dict[str, object]:
        """The exact logical state as JSON-serializable primitives.

        ``paths`` walks *every* end-marker — dead rids included, because
        their nodes are still in the tree until the next compaction and
        the node count is part of the byte-exact footprint. The
        incremental tree is uncompressed (one element per node), so its
        shape is a canonical function of this path set and
        :meth:`restore_state` reproduces ``num_nodes`` exactly.
        """
        return {
            "epoch": self._epoch,
            "next_rid": self._next_rid,
            "dead": sorted(self._dead),
            "paths": [
                [list(prefix), list(rids)]
                for prefix, rids in self._tree.live_paths(frozenset())
            ],
        }

    @classmethod
    def restore_state(
        cls,
        payload: Dict[str, object],
        *,
        compact_ratio: float = 0.5,
        auto_compact: bool = True,
    ) -> "IncrementalPrefixTree":
        """Rebuild the exact tree a :meth:`dump_state` payload captured.

        Inserts go through :attr:`PrefixTree.insert` directly — the dense
        monotone rid discipline of :meth:`insert` does not apply to a
        replayed path set, whose rids arrive in tree order, not issue
        order.
        """
        trie = cls(compact_ratio, auto_compact=auto_compact)
        paths = payload["paths"]
        universe = 0
        for prefix, _rids in paths:  # type: ignore[union-attr]
            if prefix:
                universe = max(universe, int(prefix[-1]) + 1)
        trie._order.extend_to(universe)
        for prefix, rids in paths:  # type: ignore[union-attr]
            elements = tuple(int(e) for e in prefix)
            for rid in rids:
                trie._tree.insert(elements, int(rid))
        trie._dead = {int(rid) for rid in payload["dead"]}  # type: ignore[union-attr]
        seen = {
            int(rid)
            for _prefix, rids in paths  # type: ignore[union-attr]
            for rid in rids
        }
        trie._members = seen - trie._dead
        trie._next_rid = int(payload["next_rid"])  # type: ignore[arg-type]
        trie._epoch = int(payload["epoch"])  # type: ignore[arg-type]
        return trie

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> TrieSnapshot:
        """Pin the current epoch for reading (cheap: no tree copy)."""
        return TrieSnapshot(
            self._epoch,
            self._tree,
            frozenset(self._dead),
            self._next_rid,
            len(self._members),
        )

    def subsets_of(self, elements: Iterable[int]) -> List[int]:
        """Query the current state through a fresh snapshot."""
        return self.snapshot().subsets_of(elements)
