"""Prefix tree (trie) over the subset-side collection ``R`` (paper §IV-A).

Each set in ``R`` is inserted with its elements sorted in a global order
(descending frequency by default), so sets sharing a prefix share tree
nodes and the tree-based join shares their inverted-list probes.

Two deviations from the paper's idealised picture, both forced by real data:

* **End-marker leaves.** The paper assumes every set corresponds to a unique
  leaf. Real collections contain duplicate sets and sets that are prefixes
  of other sets. We terminate every inserted set with an *end-marker* child
  node that carries the set ids (``terminal_rids``). An end-marker has no
  element; during the join its "inverted list" is the index's universe id
  list, so a probe on it always hits and Algorithms 2/3 run unmodified.
* **Multi-element nodes.** The paper notes the prefix tree can be replaced
  by a Patricia tree (radix trie) where single-child chains are merged. A
  node therefore carries a *tuple* of elements; the join probes the
  candidate in each of the node's lists. :meth:`PrefixTree.compress`
  performs the merge in place.

Join-time state (``max_sid``, ``next_max``, ``rid_list``, per-list cursors)
lives on the nodes and is (re)initialised by the join driver, so one tree can
be reused across runs and across partition-local indexes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.order import GlobalOrder
from ..data.collection import SetCollection

__all__ = ["TreeNode", "PrefixTree"]

#: Shared empty rid-list; identity-compared nowhere, equality everywhere.
_EMPTY: Tuple[int, ...] = ()


class TreeNode:
    """One node of the prefix tree.

    ``elements`` is empty for the root and for end-marker leaves, a single
    element for ordinary prefix-tree nodes, and several elements for merged
    (Patricia) nodes. ``terminal_rids`` is non-None exactly on end-marker
    leaves and lists every ``R`` id whose set ends here (duplicates share).
    """

    __slots__ = (
        "elements",
        "children",
        "child_map",
        "terminal_rids",
        # join-time state, initialised by the join driver's bind step (not
        # here: skipping the writes keeps tree construction lean) ----------
        "inv",        # primary inverted list (or the index universe)
        "cur",        # cursor into ``inv``
        "more_invs",  # extra lists for merged Patricia nodes, else None
        "more_curs",
        "max_sid",
        "next_max",
        "rid_list",
        "heap",
        "only_child",
    )

    def __init__(self, elements: Tuple[int, ...] = ()) -> None:
        self.elements: Tuple[int, ...] = elements
        self.children: List["TreeNode"] = []
        self.child_map: Optional[Dict[int, "TreeNode"]] = None
        self.terminal_rids: Optional[List[int]] = None

    @property
    def is_end_marker(self) -> bool:
        """True for the virtual leaves that carry set ids."""
        return self.terminal_rids is not None

    def __repr__(self) -> str:
        tag = f"rids={self.terminal_rids}" if self.is_end_marker else f"e={self.elements}"
        return f"TreeNode({tag}, {len(self.children)} children)"


class PrefixTree:
    """Prefix tree over ``R`` under a :class:`~repro.core.order.GlobalOrder`."""

    def __init__(self, order: GlobalOrder) -> None:
        self.order = order
        self.root = TreeNode()
        self.root.child_map = {}
        self.num_sets = 0
        self.num_nodes = 1  # the root
        self.compressed = False
        # Distinct elements per partition anchor (first element), collected
        # during insertion so the partitioned joins (§V) can build local
        # indexes without re-walking each subtree.
        self.partition_elements: Dict[int, set] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        r_collection: SetCollection,
        order: GlobalOrder,
        compress: bool = False,
    ) -> "PrefixTree":
        """Insert every set of ``R`` (elements sorted in the global order).

        With ``compress=True`` the tree is path-compressed into a Patricia
        tree after construction.
        """
        tree = cls(order)
        for rid, record in enumerate(r_collection):
            tree.insert(order.sort_record(record), rid)
        if compress:
            tree.compress()
        tree.freeze()
        return tree

    def insert(self, sorted_elements: Sequence[int], rid: int) -> None:
        """Insert one set (already sorted in the global order) with id ``rid``."""
        node = self.root
        if sorted_elements:
            anchor_elements = self.partition_elements.get(sorted_elements[0])
            if anchor_elements is None:
                self.partition_elements[sorted_elements[0]] = set(sorted_elements)
            else:
                anchor_elements.update(sorted_elements)
        for e in sorted_elements:
            cmap = node.child_map
            if cmap is None:
                # Fresh node, or one whose map was dropped by freeze():
                # rebuild from the existing children.
                cmap = {c.elements[0]: c for c in node.children if c.elements}
                node.child_map = cmap
            child = cmap.get(e)
            if child is None:
                child = TreeNode((e,))
                cmap[e] = child
                node.children.append(child)
                self.num_nodes += 1
            node = child
        end = None
        for c in node.children:
            if c.is_end_marker:
                end = c
                break
        if end is None:
            end = TreeNode()
            end.terminal_rids = []
            # End-markers first: they are the cheapest children to finalize.
            node.children.insert(0, end)
            self.num_nodes += 1
        end.terminal_rids.append(rid)
        self.num_sets += 1

    def freeze(self) -> None:
        """Drop the per-node child dictionaries once insertion is done.

        ``child_map`` only serves :meth:`insert`; the joins walk
        ``children`` directly. A dict per inner node is a large share of
        the tree's footprint (Fig 10 measures peak memory), so a frozen
        tree is substantially smaller. Inserting after freezing rebuilds
        the map lazily.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            node.child_map = None
            stack.extend(node.children)

    def compress(self) -> None:
        """Merge single-child chains in place (Patricia / radix trie, §IV-A).

        A node with exactly one child absorbs that child's elements and
        children, provided neither is an end-marker (end-markers carry rids
        and the root must stay element-free).
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is not self.root and not node.is_end_marker:
                while len(node.children) == 1 and not node.children[0].is_end_marker:
                    child = node.children[0]
                    node.elements = node.elements + child.elements
                    node.children = child.children
                    node.child_map = child.child_map
                    self.num_nodes -= 1
            stack.extend(node.children)
        self.compressed = True

    # -- introspection -----------------------------------------------------

    def iter_nodes(self) -> Iterable[TreeNode]:
        """All nodes, root included, in DFS order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def depth(self) -> int:
        """Longest root-to-leaf path length (in nodes below the root)."""
        best = 0
        stack: List[Tuple[TreeNode, int]] = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            if not node.children and d > best:
                best = d
            for c in node.children:
                stack.append((c, d + 1))
        return best

    def distinct_elements(self) -> set:
        """The element ids appearing anywhere in the tree."""
        out: set = set()
        for node in self.iter_nodes():
            out.update(node.elements)
        return out

    def partition_roots(self) -> List[Tuple[int, "TreeNode"]]:
        """The root's element children as ``(anchor_element, subtree)`` pairs.

        The paper's partitioner (§V-A) groups ``R`` sets by their smallest
        element in the global order — which is exactly the subtree rooted at
        each child of the tree root. End-marker children of the root (sets
        that are empty after ordering — impossible for valid input) are
        excluded.
        """
        return [
            (c.elements[0], c) for c in self.root.children if not c.is_end_marker
        ]
