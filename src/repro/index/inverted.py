"""Inverted index on the superset-side collection ``S`` (paper §III-A).

For each distinct element ``e`` of ``S``, the index keeps the sorted list of
ids of the sets containing ``e``. Construction is a single sequential pass:
ids are appended in insertion order, which is already ascending, so no sort
is needed (exactly the procedure described in §III-A).

The index also provides **local index** construction (paper §V): given the
subset of ``S`` ids that contain a partition's anchor element, build a
smaller index whose lists are sub-lists of the global ones, optionally
restricted to the elements a partition actually probes.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..data.collection import SetCollection
from ..obs import registry as _obs

__all__ = ["InvertedIndex", "EMPTY_LIST"]

#: Shared immutable stand-in for "element not in S"; keeps probe code branchless.
EMPTY_LIST: Tuple[int, ...] = ()


def _debug_check(index: "InvertedIndex") -> None:
    """REPRO_CHECK=1 hook: validate sortedness after a build.

    The environment test runs first so the disabled path costs one dict
    lookup and never imports :mod:`repro.core.selfcheck` (which would pull
    the whole core package into index-only consumers).
    """
    if os.environ.get("REPRO_CHECK", "") in ("", "0"):
        return
    from ..core.selfcheck import check_sorted_lists

    check_sorted_lists(index)


class InvertedIndex:
    """Sorted inverted lists over a :class:`~repro.data.collection.SetCollection`.

    Attributes
    ----------
    lists:
        ``lists[e]`` is the ascending list of set ids containing element
        ``e``; missing elements map to the shared empty tuple.
    universe:
        Ascending list of **all** set ids covered by this index. For a
        global index this is ``[0, 1, ..., len(S)-1]``; for a local index it
        is the sub-list of ids that contain the partition anchor. The prefix
        tree's end-marker leaves use it as their virtual inverted list.
    inf_sid:
        The sentinel id standing for the paper's ``S_∞``: one past the
        largest id the *underlying collection* can produce.
    """

    __slots__ = ("lists", "universe", "inf_sid", "_construction_cost")

    def __init__(
        self,
        lists: Dict[int, List[int]],
        universe: Sequence[int],
        inf_sid: int,
        construction_cost: int = 0,
    ) -> None:
        self.lists: Dict[int, Sequence[int]] = dict(lists)
        self.universe: Sequence[int] = universe
        self.inf_sid = inf_sid
        self._construction_cost = construction_cost

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, s_collection: SetCollection) -> "InvertedIndex":
        """Build the global index for ``S`` in one sequential pass."""
        lists: Dict[int, List[int]] = {}
        cost = 0
        for sid, record in enumerate(s_collection):
            cost += len(record)
            for e in record:
                bucket = lists.get(e)
                if bucket is None:
                    lists[e] = [sid]
                else:
                    bucket.append(sid)
        n = len(s_collection)
        index = cls(lists, range(n), inf_sid=n, construction_cost=cost)
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.builds")
            reg.inc("index.tokens", cost)
        _debug_check(index)
        return index

    def build_local(
        self,
        member_sids: Sequence[int],
        s_collection: SetCollection,
        needed_elements: Optional[Set[int]] = None,
    ) -> "InvertedIndex":
        """Build the local index ``I_e`` for a partition (paper §V-A).

        ``member_sids`` is the ascending list of ids of the ``S`` sets that
        contain the partition anchor (i.e. the global list ``I[e]``). Every
        local list is a sub-list of the corresponding global list, so the
        binary search cost of the tree-based method drops proportionally.

        ``needed_elements`` optionally restricts the lists materialised to
        the elements the partition's prefix tree actually contains; the sets
        are still scanned in full, so the metered construction cost stays
        ``Σ_{S ∈ I[e]} |S|`` as in the paper's cost estimate.
        """
        lists: Dict[int, List[int]] = {}
        cost = 0
        if needed_elements is None:
            for sid in member_sids:
                record = s_collection[sid]
                cost += len(record)
                for e in record:
                    bucket = lists.get(e)
                    if bucket is None:
                        lists[e] = [sid]
                    else:
                        bucket.append(sid)
        else:
            for sid in member_sids:
                record = s_collection[sid]
                cost += len(record)
                for e in record:
                    if e in needed_elements:
                        bucket = lists.get(e)
                        if bucket is None:
                            lists[e] = [sid]
                        else:
                            bucket.append(sid)
        local = InvertedIndex(
            lists,
            list(member_sids),
            inf_sid=self.inf_sid,
            construction_cost=cost,
        )
        reg = _obs.ACTIVE
        if reg is not None:
            reg.inc("index.local_builds")
            reg.inc("index.tokens", cost)
        _debug_check(local)
        return local

    def append_set(self, record: Sequence[int]) -> int:
        """Append one set to a *global* index, returning its new id.

        Ids are assigned monotonically, so each posting append keeps the
        lists sorted — the incremental form of :meth:`build`. Only global
        indexes (whose universe is the contiguous ``range``) support
        appends; a local index is a frozen restriction by construction.
        """
        if not isinstance(self.universe, range):
            raise ValueError("cannot append to a local (partition) index")
        sid = self.inf_sid
        for e in set(record):
            bucket = self.lists.get(e)
            if bucket is None:
                self.lists[e] = [sid]
            else:
                bucket.append(sid)
        self.inf_sid = sid + 1
        self.universe = range(self.inf_sid)
        self._construction_cost += len(record)
        if os.environ.get("REPRO_CHECK", "") not in ("", "0"):
            # Incremental form of _debug_check: a full O(index) validation
            # per append would swamp streaming workloads, but monotone ids
            # only need the last two entries of each touched bucket.
            from ..errors import InvariantViolation

            for e in set(record):
                bucket = self.lists[e]
                if len(bucket) >= 2 and bucket[-2] >= bucket[-1]:
                    raise InvariantViolation(
                        f"append_set broke sortedness of list {e}: "
                        f"...{bucket[-2]}, {bucket[-1]}"
                    )
        return sid

    # -- accessors ----------------------------------------------------------

    def __getitem__(self, element: int) -> Sequence[int]:
        """The inverted list of ``element`` (empty tuple if absent)."""
        return self.lists.get(element, EMPTY_LIST)

    def __contains__(self, element: int) -> bool:
        return element in self.lists

    def __len__(self) -> int:
        """Number of distinct elements indexed."""
        return len(self.lists)

    def list_length(self, element: int) -> int:
        """``|I[e]|`` — 0 for elements not in ``S``."""
        lst = self.lists.get(element)
        return len(lst) if lst is not None else 0

    def get_lists(self, elements: Iterable[int]) -> List[Sequence[int]]:
        """The inverted lists for a record, empty tuples included."""
        get = self.lists.get
        return [get(e, EMPTY_LIST) for e in elements]

    @property
    def construction_cost(self) -> int:
        """Tokens touched while building — ``Σ|S|`` in the paper's cost model."""
        return self._construction_cost

    def size_in_entries(self) -> int:
        """Total number of postings, an analytic memory proxy."""
        return sum(len(lst) for lst in self.lists.values())
