"""Batched numpy kernels for the CSR inverted-index backend.

The pure-Python cross-cutting loop (:func:`repro.core.framework.cross_cut_record`)
pays interpreter overhead per ``bisect_left`` call — one probe, one Python
frame. These kernels recover the batching headroom the paper's C++
implementation gets for free, using the CSR layout of
:class:`repro.index.storage.CSRInvertedIndex`:

* every inverted list lives in one contiguous ``values`` array, and a
  *composite-keyed* mirror ``keyed[j] = element(j) * stride + values[j]``
  (``stride > `` any probed id) is globally sorted. Probing element ``e``
  for target ``t`` is therefore ``searchsorted(keyed, e * stride + t)`` —
  which means *any number of (list, target) probes batch into a single*
  ``np.searchsorted`` *call*;
* gap lookup (the first entry strictly greater than the candidate) is a
  vectorized gather at ``pos + hit``, and the next candidate is one
  ``np.max`` reduction instead of a Python loop.

Three granularities are provided:

``batch_first_geq``
    One ``searchsorted`` probing all *k* lists of one record at once — the
    array form of :func:`repro.index.search.first_geq`.
``cross_cut_record_csr``
    The cross-cutting loop for a single record; per-list cursors are a
    numpy array, ``next_max`` is ``gap.max()``.
``cross_cut_collection_csr``
    The whole-collection superstep kernel the ``backend="csr"`` framework
    join runs: every active record advances its own candidate each
    superstep, so one ``searchsorted`` serves *all* pending probes of all
    records. Per-record candidate sequences — and therefore the result
    pairs, the probe count, and the round count — are identical to running
    :func:`cross_cut_record` record by record.

Early termination (paper §III-C) is a *probe-ordering* refinement: it
changes which lists are visited, never which pairs are produced. Batched
probing visits all lists of a round in one call, so the CSR backend has a
single code path; ``framework_et`` on this backend produces the same pairs
while metering slightly more probes than the Python ET loop would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from ..obs import registry as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports index)
    from ..core.results import PairSink
    from ..core.stats import JoinStats
    from ..data.collection import SetCollection
    from .storage import CSRInvertedIndex

#: A probe target: one scalar candidate, or one candidate per probed list.
Target = Union[int, "np.ndarray"]

__all__ = [
    "batch_first_geq",
    "batch_gap_lookup",
    "cross_cut_record_csr",
    "cross_cut_collection_csr",
]

#: Below this many surviving records the superstep overhead (a dozen numpy
#: calls per round regardless of batch width) exceeds the cost of finishing
#: the stragglers with the pure-Python loop.
_STRAGGLER_WIDTH = 16
#: ... but only bail out on genuinely long tails; short joins never switch.
_STRAGGLER_SUPERSTEPS = 2048


def batch_first_geq(
    keyed: np.ndarray, bases: np.ndarray, target: Target
) -> np.ndarray:
    """Positions of the first entry ``>= target`` in each probed list.

    ``keyed`` is the composite-keyed CSR array; ``bases[i] = e_i * stride``
    selects the list of element ``e_i``. ``target`` is a scalar candidate
    (or a per-list array of candidates, each ``< stride``). The returned
    positions are *global* indices into ``keyed`` / ``values``; position
    ``offsets[e_i + 1]`` means every entry of list ``i`` is smaller —
    exactly ``len(lst)`` in :func:`repro.index.search.first_geq` terms,
    rebased by the list's start offset.

    All *k* probes are answered by one ``np.searchsorted`` call — the
    batching primitive everything else in this module builds on.
    """
    return np.searchsorted(keyed, bases + target, side="left")


def batch_gap_lookup(
    keyed: np.ndarray,
    bases: np.ndarray,
    ends: np.ndarray,
    pos: np.ndarray,
    target: Target,
    inf_sid: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized hit/gap classification for a batch of probes.

    Given the positions returned by :func:`batch_first_geq`, compute per
    list the paper's probe outcome (see :func:`repro.index.search.probe`):

    * ``hit[i]``  — the candidate appears in list ``i``;
    * ``gap[i]``  — the next id list ``i`` can justify as a candidate: the
      entry after the hit, the missed-to entry, or ``inf_sid`` when the
      list is exhausted.

    Returns ``(hit, gap)`` as a bool array and an int64 array.
    """
    n = keyed.shape[0]
    at_end = pos >= ends
    safe = np.minimum(pos, max(n - 1, 0))
    sid = np.where(at_end, inf_sid, keyed[safe] - bases)
    hit = sid == target
    pos_next = pos + hit
    at_end_next = pos_next >= ends
    safe_next = np.minimum(pos_next, max(n - 1, 0))
    after = np.where(at_end_next, inf_sid, keyed[safe_next] - bases)
    # On a hit the gap is the entry after the candidate; on a miss the gap
    # *is* the missed-to entry (sid), or inf_sid at the end of the list.
    gap = np.where(hit, after, sid)
    return hit, gap


def cross_cut_record_csr(
    rid: int,
    index: "CSRInvertedIndex",
    record: Sequence[int],
    first_sid: int,
    inf_sid: int,
    sink: "PairSink",
    stats: Optional["JoinStats"] = None,
) -> None:
    """Cross-cutting loop for one record over a CSR index.

    Mirrors :func:`repro.core.framework.cross_cut_record` but keeps the
    per-list cursors as a numpy array, probes all ``k`` lists with one
    ``searchsorted`` per round, and takes ``next_max`` with ``np.max``.
    Records containing an element absent from ``S`` are skipped upfront
    (they can never find a superset), as in the Python loop.
    """
    probe = index.record_probe(record)
    if probe is None:
        return
    bases, starts, ends = probe
    keyed = index.keyed
    cursors = starts  # per-list cursors, advanced to each round's positions
    k = bases.shape[0]
    max_sid = first_sid
    searches = 0
    rounds = 0
    # lint: scalar-fallback (one iteration per cross-cut round; the k probes
    # inside each round are a single batched searchsorted)
    while max_sid < inf_sid:
        rounds += 1
        searches += k
        cursors = batch_first_geq(keyed, bases, max_sid)
        hit, gap = batch_gap_lookup(keyed, bases, ends, cursors, max_sid, inf_sid)
        if hit.all():
            sink.add(rid, max_sid)
        max_sid = int(gap.max())
    if stats is not None:
        stats.binary_searches += searches
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("kernel.searchsorted_calls", rounds)
        reg.inc("kernel.probes", searches)


def _emit_single_element_records(
    r_collection: "SetCollection",
    index: "CSRInvertedIndex",
    sink: "PairSink",
    rids: Sequence[int],
) -> None:
    """``{e} ⊆ S[sid]`` iff ``sid ∈ I[e]``: the whole list is the answer.

    Cross-cutting a one-list record degenerates to walking its list one hit
    at a time (every probe hits and the gap is the very next entry), so the
    kernel emits the list directly instead of burning one superstep per
    posting.
    """
    # lint: scalar-fallback (one bulk add_sids emission per record)
    for rid in rids:
        lst = index.get_list(r_collection[rid][0])
        sink.add_sids(rid, lst.tolist())


def cross_cut_collection_csr(
    r_collection: "SetCollection",
    index: "CSRInvertedIndex",
    sink: "PairSink",
    stats: Optional["JoinStats"] = None,
) -> None:
    """Cross-cut every record of ``r_collection`` in vectorized supersteps.

    Each superstep advances *every* still-active record by exactly one
    round of the cross-cutting loop: all pending probes (one per list per
    active record) go through a single ``searchsorted``, hits and gaps are
    classified in bulk by :func:`batch_gap_lookup`, and the per-record
    ``found`` / ``next_max`` reductions run as ``np.add.reduceat`` /
    ``np.maximum.reduceat`` over the record's slot group. Records whose
    candidate reaches ``S_∞`` are compacted out. The candidate sequence of
    each record is exactly the one the scalar loop produces, so the emitted
    pair set, probe count, and round count match the Python backend
    (modulo emission order, which is round-major here).

    Two departures from the one-record-at-a-time shape, both exact:

    * single-element records short-circuit to their full inverted list;
    * once fewer than ``_STRAGGLER_WIDTH`` records survive past
      ``_STRAGGLER_SUPERSTEPS`` supersteps (a long-tail join), the
      remaining records finish on the pure-Python loop, where per-round
      overhead is lower than a fixed-cost numpy superstep.
    """
    inf_sid = index.inf_sid
    universe = index.universe
    if len(universe) == 0:
        return
    first_sid = int(universe[0])

    rec_rids = []
    rec_lens = []
    base_parts = []
    end_parts = []
    single_rids = []
    # lint: scalar-fallback (one-time setup pass over R records, not probe work)
    for rid, record in enumerate(r_collection):
        probe = index.record_probe(record)
        if probe is None:
            continue
        bases, __, ends = probe
        if bases.shape[0] == 1:
            single_rids.append(rid)
            continue
        rec_rids.append(rid)
        rec_lens.append(bases.shape[0])
        base_parts.append(bases)
        end_parts.append(ends)
    if single_rids:
        _emit_single_element_records(r_collection, index, sink, single_rids)
    if not rec_rids:
        reg = _obs.ACTIVE
        if reg is not None and single_rids:
            reg.inc("kernel.single_element_records", len(single_rids))
        return

    slot_base = np.concatenate(base_parts)
    slot_end = np.concatenate(end_parts)
    rec_rid = np.asarray(rec_rids, dtype=np.int64)
    rec_k = np.asarray(rec_lens, dtype=np.int64)
    rec_off = np.zeros(rec_k.shape[0], dtype=np.int64)
    np.cumsum(rec_k[:-1], out=rec_off[1:])
    slot_rec = np.repeat(np.arange(rec_k.shape[0]), rec_k)
    cand = np.full(rec_k.shape[0], first_sid, dtype=np.int64)

    keyed = index.keyed
    searches = 0
    rounds = 0
    supersteps = 0
    stragglers = 0
    # lint: scalar-fallback (superstep driver: one iteration advances every
    # alive record by a whole round through batched numpy calls)
    while cand.shape[0]:
        supersteps += 1
        rounds += cand.shape[0]
        slot_cand = cand[slot_rec]
        pos = batch_first_geq(keyed, slot_base, slot_cand)
        searches += pos.shape[0]
        hit, gap = batch_gap_lookup(keyed, slot_base, slot_end, pos, slot_cand, inf_sid)
        found = np.add.reduceat(hit.astype(np.int64), rec_off) == rec_k
        next_cand = np.maximum.reduceat(gap, rec_off)
        if found.any():
            # lint: scalar-fallback (found records per superstep are few;
            # each emits a distinct (rid, sid) pair, no bulk sink form fits)
            for i in np.nonzero(found)[0]:
                sink.add(int(rec_rid[i]), int(cand[i]))
        cand = next_cand
        alive = cand < inf_sid
        n_alive = int(alive.sum())
        if n_alive == 0:
            break
        if n_alive < cand.shape[0]:
            slot_alive = alive[slot_rec]
            slot_base = slot_base[slot_alive]
            slot_end = slot_end[slot_alive]
            rec_rid = rec_rid[alive]
            rec_k = rec_k[alive]
            cand = cand[alive]
            rec_off = np.zeros(rec_k.shape[0], dtype=np.int64)
            np.cumsum(rec_k[:-1], out=rec_off[1:])
            slot_rec = np.repeat(np.arange(rec_k.shape[0]), rec_k)
        if cand.shape[0] <= _STRAGGLER_WIDTH and supersteps >= _STRAGGLER_SUPERSTEPS:
            # Long-tail join: finish the survivors on the scalar loop.
            from ..core.framework import cross_cut_record

            stragglers = cand.shape[0]
            # lint: scalar-fallback (deliberate straggler tail: <=
            # _STRAGGLER_WIDTH survivors finish on the scalar loop where
            # per-round numpy call overhead would dominate)
            for i in range(cand.shape[0]):
                rid = int(rec_rid[i])
                lists = [
                    index.get_list(e).tolist() for e in r_collection[rid]
                ]
                cross_cut_record(
                    rid, lists, int(cand[i]), inf_sid, sink, False, stats
                )
            break
    if stats is not None:
        stats.binary_searches += searches
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("kernel.searchsorted_calls", supersteps)
        reg.inc("kernel.probes", searches)
        reg.inc("kernel.supersteps", supersteps)
        reg.inc("kernel.single_element_records", len(single_rids))
        reg.inc("kernel.straggler_records", stragglers)
