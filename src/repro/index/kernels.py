"""Batched numpy kernels for the CSR inverted-index backend.

The pure-Python cross-cutting loop (:func:`repro.core.framework.cross_cut_record`)
pays interpreter overhead per ``bisect_left`` call — one probe, one Python
frame. These kernels recover the batching headroom the paper's C++
implementation gets for free, using the CSR layout of
:class:`repro.index.storage.CSRInvertedIndex`:

* every inverted list lives in one contiguous ``values`` array, and a
  *composite-keyed* mirror ``keyed[j] = element(j) * stride + values[j]``
  (``stride > `` any probed id) is globally sorted. Probing element ``e``
  for target ``t`` is therefore ``searchsorted(keyed, e * stride + t)`` —
  which means *any number of (list, target) probes batch into a single*
  ``np.searchsorted`` *call*;
* gap lookup (the first entry strictly greater than the candidate) is a
  vectorized gather at ``pos + hit``, and the next candidate is one
  ``np.max`` reduction instead of a Python loop.

Three granularities are provided:

``batch_first_geq``
    One ``searchsorted`` probing all *k* lists of one record at once — the
    array form of :func:`repro.index.search.first_geq`.
``cross_cut_record_csr``
    The cross-cutting loop for a single record; per-list cursors are a
    numpy array, ``next_max`` is ``gap.max()``.
``cross_cut_collection_csr``
    The whole-collection superstep kernel the ``backend="csr"`` framework
    join runs: every active record advances its own candidate each
    superstep, so one ``searchsorted`` serves *all* pending probes of all
    records. Per-record candidate sequences — and therefore the result
    pairs, the probe count, and the round count — are identical to running
    :func:`cross_cut_record` record by record.
``cross_cut_collection_hybrid``
    The same superstep on a :class:`~repro.index.storage
    .HybridInvertedIndex`, routing each probe to its representation:
    *dense* lists (bitmap rows) answer by masking at most two uint64 words
    and bit-scanning (:func:`bitmap_gap_lookup`), *sparse* lists gallop
    from per-slot cursors (:func:`gallop_first_geq` — doubling steps
    batched across the whole slot set, then one ``searchsorted`` finishes
    whatever escaped the window). Both paths fall back to the exact CSR
    arrays for the rare probes they cannot settle, so the candidate
    sequences — pairs, probes, rounds — again match the scalar loop
    exactly.

Early termination (paper §III-C) is a *probe-ordering* refinement: it
changes which lists are visited, never which pairs are produced. Batched
probing visits all lists of a round in one call, so the CSR backend has a
single code path; ``framework_et`` on this backend produces the same pairs
while metering slightly more probes than the Python ET loop would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from ..obs import registry as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports index)
    from ..core.results import PairSink
    from ..core.stats import JoinStats
    from ..data.collection import SetCollection
    from .storage import CSRInvertedIndex, HybridInvertedIndex

#: A probe target: one scalar candidate, or one candidate per probed list.
Target = Union[int, "np.ndarray"]

__all__ = [
    "batch_first_geq",
    "batch_gap_lookup",
    "bitmap_first_geq",
    "bitmap_gap_lookup",
    "gallop_first_geq",
    "cross_cut_record_csr",
    "cross_cut_collection_csr",
    "cross_cut_collection_hybrid",
]

#: Below this many surviving records the superstep overhead (a dozen numpy
#: calls per round regardless of batch width) exceeds the cost of finishing
#: the stragglers with the pure-Python loop.
_STRAGGLER_WIDTH = 16
#: ... but only bail out on genuinely long tails; short joins never switch.
_STRAGGLER_SUPERSTEPS = 2048

#: All 64 bits set — the mask seed for bitmap probes.
_FULL_WORD = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
#: Entries a gallop covers before giving up: doubling probes at offsets
#: 0, 1, 3, ..., window-1 from the cursor. Probes whose answer lies further
#: out are finished by one global ``searchsorted`` — the gallop only has to
#: win the near-cursor common case, never to replace the binary search.
_GALLOP_WINDOW = 64
#: Slots below which a hybrid superstep takes the plain CSR step instead of
#: the bitmap/gallop pipelines. One C ``searchsorted`` has essentially no
#: dispatch overhead, while the vectorized bitmap path issues ~20 numpy
#: calls; measured on this testbed the crossover sits near 2k slots, and
#: the representation split only starts winning (2.5-4x) well above it.
_HYBRID_MIN_BATCH = 3072
#: Widest record (list count) for which the per-record reductions run
#: columnar (one gather per list position over the records still that
#: wide) instead of via ``reduceat``. Columnar touches each slot exactly
#: once with plain SIMD gathers but pays one numpy dispatch per column;
#: ``reduceat`` pays per-*segment* overhead, which dominates on the short
#: records skewed data produces.
_COLUMNAR_MAX_K = 16
#: Slots below which :func:`_segment_reduce` prefers ``reduceat`` even for
#: narrow records: columnar's fixed ~4 dispatches per list position cost
#: more than ``reduceat``'s per-segment overhead on a small batch, and the
#: long tail of a join is thousands of such small supersteps.
_COLUMNAR_MIN_SLOTS = 8192


def _column_bounds(rec_k: np.ndarray) -> Optional[np.ndarray]:
    """Suffix-start indices for :func:`_segment_reduce`'s columnar strategy.

    ``col_lo[j - 1]`` is the first record with more than ``j`` lists;
    valid while the (ascending-by-``rec_k``) record arrays are unchanged,
    so kernels recompute it only on compaction. ``None`` selects the
    ``reduceat`` strategy for wide records.
    """
    k_max = int(rec_k[-1])
    if k_max > _COLUMNAR_MAX_K:
        return None
    return np.searchsorted(rec_k, np.arange(2, k_max + 1))


def _segment_reduce(
    hit: np.ndarray,
    gap: np.ndarray,
    rec_off: np.ndarray,
    col_lo: Optional[np.ndarray],
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-record ``(all hits, max gap)`` over contiguous slot segments.

    Callers keep records sorted by ascending list count, which makes
    "records with more than ``j`` lists" a suffix slice (``col_lo``, from
    :func:`_column_bounds`): the columnar strategy folds column ``j`` into
    the running reductions with one gather + one ``maximum``/``and`` over
    that suffix, touching every slot exactly once overall. Wide records
    (``col_lo is None``) go through ``reduceat``, where per-column
    dispatch would beat per-segment overhead; columnar wins on the short
    records skewed data produces because ``reduceat`` pays per-*segment*
    overhead instead.
    """
    if col_lo is None or hit.shape[0] < _COLUMNAR_MIN_SLOTS:
        found = np.logical_and.reduceat(hit, rec_off)
        next_cand = np.maximum.reduceat(gap, rec_off)
        return found, next_cand
    # Fancy indexing copies, so the running reductions own their buffers.
    found = hit[rec_off]
    next_cand = gap[rec_off]
    # lint: scalar-fallback (one iteration per list position <=
    # _COLUMNAR_MAX_K; each folds a whole column of records in two
    # vectorized ops)
    for j in range(1, col_lo.shape[0] + 1):
        lo = col_lo[j - 1]
        idx = rec_off[lo:] + j
        found[lo:] &= hit[idx]
        np.maximum(next_cand[lo:], gap[idx], out=next_cand[lo:])
    return found, next_cand


def batch_first_geq(
    keyed: np.ndarray, bases: np.ndarray, target: Target
) -> np.ndarray:
    """Positions of the first entry ``>= target`` in each probed list.

    ``keyed`` is the composite-keyed CSR array; ``bases[i] = e_i * stride``
    selects the list of element ``e_i``. ``target`` is a scalar candidate
    (or a per-list array of candidates, each ``< stride``). The returned
    positions are *global* indices into ``keyed`` / ``values``; position
    ``offsets[e_i + 1]`` means every entry of list ``i`` is smaller —
    exactly ``len(lst)`` in :func:`repro.index.search.first_geq` terms,
    rebased by the list's start offset.

    All *k* probes are answered by one ``np.searchsorted`` call — the
    batching primitive everything else in this module builds on.
    """
    return np.searchsorted(keyed, bases + target, side="left")


def batch_gap_lookup(
    keyed: np.ndarray,
    bases: np.ndarray,
    ends: np.ndarray,
    pos: np.ndarray,
    target: Target,
    inf_sid: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized hit/gap classification for a batch of probes.

    Given the positions returned by :func:`batch_first_geq`, compute per
    list the paper's probe outcome (see :func:`repro.index.search.probe`):

    * ``hit[i]``  — the candidate appears in list ``i``;
    * ``gap[i]``  — the next id list ``i`` can justify as a candidate: the
      entry after the hit, the missed-to entry, or ``inf_sid`` when the
      list is exhausted.

    Returns ``(hit, gap)`` as a bool array and an int64 array.
    """
    n = keyed.shape[0]
    at_end = pos >= ends
    safe = np.minimum(pos, max(n - 1, 0))
    sid = np.where(at_end, inf_sid, keyed[safe] - bases)
    hit = sid == target
    pos_next = pos + hit
    at_end_next = pos_next >= ends
    safe_next = np.minimum(pos_next, max(n - 1, 0))
    after = np.where(at_end_next, inf_sid, keyed[safe_next] - bases)
    # On a hit the gap is the entry after the candidate; on a miss the gap
    # *is* the missed-to entry (sid), or inf_sid at the end of the list.
    gap = np.where(hit, after, sid)
    return hit, gap


def cross_cut_record_csr(
    rid: int,
    index: "CSRInvertedIndex",
    record: Sequence[int],
    first_sid: int,
    inf_sid: int,
    sink: "PairSink",
    stats: Optional["JoinStats"] = None,
) -> None:
    """Cross-cutting loop for one record over a CSR index.

    Mirrors :func:`repro.core.framework.cross_cut_record` but keeps the
    per-list cursors as a numpy array, probes all ``k`` lists with one
    ``searchsorted`` per round, and takes ``next_max`` with ``np.max``.
    Records containing an element absent from ``S`` are skipped upfront
    (they can never find a superset), as in the Python loop.
    """
    probe = index.record_probe(record)
    if probe is None:
        return
    bases, starts, ends = probe
    keyed = index.keyed
    cursors = starts  # per-list cursors, advanced to each round's positions
    k = bases.shape[0]
    max_sid = first_sid
    searches = 0
    rounds = 0
    # lint: scalar-fallback (one iteration per cross-cut round; the k probes
    # inside each round are a single batched searchsorted)
    while max_sid < inf_sid:
        rounds += 1
        searches += k
        cursors = batch_first_geq(keyed, bases, max_sid)
        hit, gap = batch_gap_lookup(keyed, bases, ends, cursors, max_sid, inf_sid)
        if hit.all():
            sink.add(rid, max_sid)
        max_sid = int(gap.max())
    if stats is not None:
        stats.binary_searches += searches
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("kernel.searchsorted_calls", rounds)
        reg.inc("kernel.probes", searches)


def _emit_single_element_records(
    r_collection: "SetCollection",
    index: "CSRInvertedIndex",
    sink: "PairSink",
    rids: Sequence[int],
) -> None:
    """``{e} ⊆ S[sid]`` iff ``sid ∈ I[e]``: the whole list is the answer.

    Cross-cutting a one-list record degenerates to walking its list one hit
    at a time (every probe hits and the gap is the very next entry), so the
    kernel emits the list directly instead of burning one superstep per
    posting.
    """
    # lint: scalar-fallback (one bulk add_sids emission per record; the
    # sink normalises the numpy list once, and counting sinks never do)
    for rid in rids:
        sink.add_sids(rid, index.get_list(r_collection[rid][0]))


def cross_cut_collection_csr(
    r_collection: "SetCollection",
    index: "CSRInvertedIndex",
    sink: "PairSink",
    stats: Optional["JoinStats"] = None,
) -> None:
    """Cross-cut every record of ``r_collection`` in vectorized supersteps.

    Each superstep advances *every* still-active record by exactly one
    round of the cross-cutting loop: all pending probes (one per list per
    active record) go through a single ``searchsorted``, hits and gaps are
    classified in bulk by :func:`batch_gap_lookup`, and the per-record
    ``found`` / ``next_max`` reductions run as ``np.add.reduceat`` /
    ``np.maximum.reduceat`` over the record's slot group. Records whose
    candidate reaches ``S_∞`` are compacted out. The candidate sequence of
    each record is exactly the one the scalar loop produces, so the emitted
    pair set, probe count, and round count match the Python backend
    (modulo emission order, which is round-major here).

    Two departures from the one-record-at-a-time shape, both exact:

    * single-element records short-circuit to their full inverted list;
    * once fewer than ``_STRAGGLER_WIDTH`` records survive past
      ``_STRAGGLER_SUPERSTEPS`` supersteps (a long-tail join), the
      remaining records finish on the pure-Python loop, where per-round
      overhead is lower than a fixed-cost numpy superstep.
    """
    inf_sid = index.inf_sid
    universe = index.universe
    if len(universe) == 0:
        return
    first_sid = int(universe[0])

    rec_rids = []
    rec_lens = []
    base_parts = []
    end_parts = []
    single_rids = []
    # lint: scalar-fallback (one-time setup pass over R records, not probe work)
    for rid, record in enumerate(r_collection):
        probe = index.record_probe(record)
        if probe is None:
            continue
        bases, __, ends = probe
        if bases.shape[0] == 1:
            single_rids.append(rid)
            continue
        rec_rids.append(rid)
        rec_lens.append(bases.shape[0])
        base_parts.append(bases)
        end_parts.append(ends)
    if single_rids:
        _emit_single_element_records(r_collection, index, sink, single_rids)
    if not rec_rids:
        reg = _obs.ACTIVE
        if reg is not None and single_rids:
            reg.inc("kernel.single_element_records", len(single_rids))
        return

    # Records ascending by list count: compaction preserves the order, and
    # _segment_reduce's columnar strategy needs "records with > j lists" to
    # be a suffix slice. Pair sets are order-insensitive, so only the
    # emission order shifts.
    order = np.argsort(np.asarray(rec_lens, dtype=np.int64), kind="stable")
    # lint: scalar-fallback (k-way gather of per-record arrays; one iteration per record)
    slot_base = np.concatenate([base_parts[i] for i in order])
    # lint: scalar-fallback (same per-record gather as slot_base)
    slot_end = np.concatenate([end_parts[i] for i in order])
    rec_rid = np.asarray(rec_rids, dtype=np.int64)[order]
    rec_k = np.asarray(rec_lens, dtype=np.int64)[order]
    rec_off = np.zeros(rec_k.shape[0], dtype=np.int64)
    np.cumsum(rec_k[:-1], out=rec_off[1:])
    slot_rec = np.repeat(np.arange(rec_k.shape[0]), rec_k)
    cand = np.full(rec_k.shape[0], first_sid, dtype=np.int64)
    col_lo = _column_bounds(rec_k)

    keyed = index.keyed
    searches = 0
    rounds = 0
    supersteps = 0
    stragglers = 0
    # lint: scalar-fallback (superstep driver: one iteration advances every
    # alive record by a whole round through batched numpy calls)
    while cand.shape[0]:
        supersteps += 1
        rounds += cand.shape[0]
        slot_cand = cand[slot_rec]
        pos = batch_first_geq(keyed, slot_base, slot_cand)
        searches += pos.shape[0]
        hit, gap = batch_gap_lookup(keyed, slot_base, slot_end, pos, slot_cand, inf_sid)
        found, next_cand = _segment_reduce(hit, gap, rec_off, col_lo)
        if found.any():
            sink.add_pairs(rec_rid[found], cand[found])
        cand = next_cand
        alive = cand < inf_sid
        n_alive = int(alive.sum())
        if n_alive == 0:
            break
        if n_alive < cand.shape[0]:
            slot_alive = alive[slot_rec]
            slot_base = slot_base[slot_alive]
            slot_end = slot_end[slot_alive]
            rec_rid = rec_rid[alive]
            rec_k = rec_k[alive]
            cand = cand[alive]
            rec_off = np.zeros(rec_k.shape[0], dtype=np.int64)
            np.cumsum(rec_k[:-1], out=rec_off[1:])
            slot_rec = np.repeat(np.arange(rec_k.shape[0]), rec_k)
            col_lo = _column_bounds(rec_k)
        if cand.shape[0] <= _STRAGGLER_WIDTH and supersteps >= _STRAGGLER_SUPERSTEPS:
            # Long-tail join: finish the survivors on the scalar loop.
            from ..core.framework import cross_cut_record

            stragglers = cand.shape[0]
            # lint: scalar-fallback (deliberate straggler tail: <=
            # _STRAGGLER_WIDTH survivors finish on the scalar loop where
            # per-round numpy call overhead would dominate)
            for i in range(cand.shape[0]):
                rid = int(rec_rid[i])
                # lint: scalar-fallback (straggler tail: python lists feed cross_cut_record)
                lists = [
                    index.get_list(e).tolist() for e in r_collection[rid]
                ]
                cross_cut_record(
                    rid, lists, int(cand[i]), inf_sid, sink, False, stats
                )
            break
    if stats is not None:
        stats.binary_searches += searches
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("kernel.searchsorted_calls", supersteps)
        reg.inc("kernel.probes", searches)
        reg.inc("kernel.supersteps", supersteps)
        reg.inc("kernel.single_element_records", len(single_rids))
        reg.inc("kernel.straggler_records", stragglers)


# --------------------------------------------------------------------------
# Hybrid backend: bitmap rows for dense lists, galloping for sparse ones
# --------------------------------------------------------------------------


def _ctz64(words: np.ndarray) -> np.ndarray:
    """Index of the lowest set bit per uint64 (inputs must be nonzero).

    ``frexp`` on the isolated lowest bit is exact by definition (the bit is
    a power of two, and every power of two up to ``2**63`` is an exact
    float64), so no platform-dependent ``log2`` rounding is involved.
    """
    lsb = words & (~words + np.uint64(1))
    __, exponent = np.frexp(lsb.astype(np.float64))
    return exponent.astype(np.int64) - 1


def bitmap_first_geq(
    bitmap: np.ndarray,
    words: int,
    rows: np.ndarray,
    targets: np.ndarray,
    inf_sid: int,
) -> np.ndarray:
    """First set bit ``>= target`` per probed bitmap row, two words deep.

    ``bitmap`` is the flat uint64 row store of a
    :class:`~repro.index.storage.HybridInvertedIndex` (``words`` words per
    row); ``rows[i]`` / ``targets[i]`` describe probe ``i``. Returns per
    probe the smallest sid ``>= target`` in the row, looking at the
    target's word and the one after it:

    * a sid — found within the window;
    * ``inf_sid`` — the row is exhausted (no set bit at or past the
      target), or the target is already ``>= inf_sid``;
    * ``-1`` — *unresolved*: both inspected words were empty past the
      target but the row continues. The miss itself is already proven
      (bit ``target`` was inspected and clear); only the gap needs the
      caller's CSR fallback. At bitmap-worthy densities (>= 1 posting per
      word) two consecutive empty words are rare, so fallbacks are too.
    """
    n = targets.shape[0]
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    if words == 0:
        out[:] = inf_sid
        return out
    oob = targets >= inf_sid
    # Clamp the word index for out-of-bounds targets (overwritten below);
    # in-bounds targets satisfy target >> 6 <= (inf_sid - 1) >> 6 < words.
    w0 = np.minimum(targets >> 6, words - 1)
    base = rows * words
    shift = (targets & 63).astype(np.uint64)
    masked = bitmap[base + w0] & np.left_shift(_FULL_WORD, shift)
    found0 = masked != 0
    if found0.any():
        i0 = np.flatnonzero(found0)
        out[i0] = (w0[i0] << 6) + _ctz64(masked[i0])
    rest = ~found0
    w1 = w0 + 1
    in_row = rest & (w1 < words)
    if in_row.any():
        i1 = np.flatnonzero(in_row)
        word1 = bitmap[base[i1] + w1[i1]]
        hit1 = word1 != 0
        if hit1.any():
            j = i1[hit1]
            out[j] = (w1[j] << 6) + _ctz64(word1[hit1])
    out[rest & (w1 >= words)] = inf_sid
    # Targets at/past inf_sid can never be beaten: trailing bits beyond
    # inf_sid - 1 are never set, and the clamped word may have matched.
    out[oob] = inf_sid
    return out


def bitmap_gap_lookup(
    bitmap: np.ndarray,
    words: int,
    rows: np.ndarray,
    targets: np.ndarray,
    inf_sid: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Hit/gap classification for a batch of dense (bitmap-row) probes.

    The bitmap twin of :func:`batch_gap_lookup`: ``hit[i]`` is exact for
    every probe (bit ``target`` is inspected directly, so a miss is proven
    even when the follow-up sid is not found); ``gap[i]`` is the entry
    after a hit / the missed-to entry / ``inf_sid``, or ``-1`` when it
    escaped the inspected window — the caller finishes those few on the
    CSR arrays.

    Hit or miss, the gap is the same quantity — the first set bit
    *strictly greater* than the target (a missed target's bit is clear, so
    "first >= target" and "first > target" coincide) — which lets one
    fused pass answer both: the target's word, shifted down, yields the
    hit bit and the remaining higher bits; only when those are empty is
    the following word consulted.
    """
    n = targets.shape[0]
    hit = np.zeros(n, dtype=bool)
    gap = np.full(n, inf_sid, dtype=np.int64)
    if n == 0 or words == 0:
        return hit, gap
    oob = targets >= inf_sid
    # Clamp the word index for out-of-bounds targets (masked out below);
    # in-bounds targets satisfy target >> 6 <= (inf_sid - 1) >> 6 < words.
    w0 = np.minimum(targets >> 6, words - 1)
    base = rows * words
    shifted = bitmap[base + w0] >> (targets & 63).astype(np.uint64)
    hit = (shifted & np.uint64(1)) != 0
    rest = shifted >> np.uint64(1)  # bits strictly above the target, word 0
    found0 = rest != 0
    # _ctz64 output is garbage on zero words; the where() masks those out.
    gap = np.where(found0, targets + 1 + _ctz64(rest), np.int64(-1))
    need = ~found0
    w1 = w0 + 1
    in_row = need & (w1 < words)
    if in_row.any():
        i1 = np.flatnonzero(in_row)
        word1 = bitmap[base[i1] + w1[i1]]
        hit1 = word1 != 0
        if hit1.any():
            j = i1[hit1]
            gap[j] = (w1[j] << 6) + _ctz64(word1[hit1])
    gap[need & (w1 >= words)] = inf_sid
    # Targets at/past inf_sid can never hit or be beaten: bits beyond
    # inf_sid - 1 are never set, and the clamped word may have matched.
    if oob.any():
        hit[oob] = False
        gap[oob] = inf_sid
    return hit, gap


def _bitmap_gap_inbounds(
    bitmap: np.ndarray,
    words: int,
    row_base: np.ndarray,
    targets: np.ndarray,
    inf_sid: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Kernel-internal :func:`bitmap_gap_lookup` for in-bounds targets.

    The superstep kernels only probe alive candidates (``< inf_sid`` by
    compaction), so the public function's out-of-bounds masking and word
    clamp are dead weight on the hottest path; ``row_base`` (``row *
    words``) is also precomputed by the caller, because it only changes on
    compaction, not per superstep. Semantics are otherwise identical:
    exact ``hit``, ``gap`` = first set bit strictly above the target, with
    ``-1`` for window escapees and ``inf_sid`` past the last word.
    """
    w0 = targets >> 6
    # int64 -> uint64 view is free and exact here: targets are sids, so
    # the masked low bits are nonnegative.
    shifted = bitmap[row_base + w0] >> (targets & 63).view(np.uint64)
    hit = (shifted & np.uint64(1)) != 0
    rest = shifted >> np.uint64(1)  # bits strictly above the target, word 0
    # frexp's exponent on the isolated lowest bit is ctz + 1 (see _ctz64),
    # which is exactly the "+1 past the target" the gap needs — so the gap
    # is target + exponent in one add. An empty ``rest`` gives exponent 0,
    # i.e. ``gap == target``: impossible for a real gap (always > target),
    # so those slots are exactly the misses and are settled on the subset
    # path below — no full-batch masking pass required.
    lsb = rest & np.negative(rest)
    __, exponent = np.frexp(lsb.astype(np.float64))
    gap = targets + exponent.astype(np.int64)
    miss = np.flatnonzero(exponent == 0)
    if miss.shape[0]:
        w1 = w0[miss] + 1
        in_row = w1 < words
        past = miss[~in_row]
        if past.shape[0]:
            gap[past] = inf_sid
        i1 = miss[in_row]
        if i1.shape[0]:
            w1 = w1[in_row]
            word1 = bitmap[row_base[i1] + w1]
            hit1 = word1 != 0
            j = i1[hit1]
            if j.shape[0]:
                gap[j] = (w1[hit1] << 6) + _ctz64(word1[hit1])
            j = i1[~hit1]
            if j.shape[0]:
                gap[j] = -1
    return hit, gap


def gallop_first_geq(
    keyed: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    keys: np.ndarray,
) -> np.ndarray:
    """Batched galloping search: first position in ``[lo, hi)`` with
    ``keyed[pos] >= key``, per probe.

    Precondition (the cross-cut cursor invariant): every entry below
    ``lo[i]`` is ``< keys[i]`` — candidates only grow within a record, so
    last round's position is a valid lower bound this round.

    Doubling steps run *batched across all probes* (offsets 0, 1, 3, ...,
    ``_GALLOP_WINDOW - 1`` from the cursor); a probe whose bracketing word
    is found is finished by a batched bisection over its (tiny) window.
    Probes whose answer lies beyond the window return ``-1`` — the caller
    settles all of them with one global ``searchsorted``, so the worst
    case costs one extra gather pass over what plain CSR probing pays.
    ``hi[i]`` is returned for probes whose whole range is consumed or
    proven smaller than the key.
    """
    n = lo.shape[0]
    pos = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return pos
    consumed = lo >= hi
    if consumed.any():
        pos[consumed] = hi[consumed]
    active = np.flatnonzero(~consumed)
    cur = lo[active]
    key = keys[active]
    end = hi[active]
    win_idx = []
    win_lo = []
    win_hi = []
    step = 1
    # lint: scalar-fallback (fixed doubling schedule: <= log2(_GALLOP_WINDOW)
    # + 1 iterations, each one batched gather+compare over the active probes)
    while active.shape[0] and step <= _GALLOP_WINDOW:
        probe_at = np.minimum(cur + step - 1, end - 1)
        ge = keyed[probe_at] >= key
        if ge.any():
            g = np.flatnonzero(ge)
            win_idx.append(active[g])
            win_lo.append(cur[g])
            win_hi.append(probe_at[g])  # invariant: keyed[win_hi] >= key
        ended = ~ge & (probe_at == end - 1)
        if ended.any():
            e = np.flatnonzero(ended)
            pos[active[e]] = end[e]  # whole remaining range < key
        cont = ~ge & ~ended
        if cont.all():
            cur = probe_at + 1
        else:
            c = np.flatnonzero(cont)
            active = active[c]
            cur = probe_at[c] + 1
            key = key[c]
            end = end[c]
        step <<= 1
    # Probes still active here overran the window; they stay -1 and the
    # caller finishes them with one global searchsorted.
    if win_idx:
        bi = np.concatenate(win_idx)
        blo = np.concatenate(win_lo)
        bhi = np.concatenate(win_hi)
        bkey = keys[bi]
        # lint: scalar-fallback (bounded batched bisection: windows hold <=
        # _GALLOP_WINDOW entries, so <= log2(_GALLOP_WINDOW) + 1 iterations)
        while True:
            narrow = blo < bhi
            if not narrow.any():
                break
            mid = (blo + bhi) >> 1
            ge_mid = keyed[mid] >= bkey
            bhi = np.where(narrow & ge_mid, mid, bhi)
            blo = np.where(narrow & ~ge_mid, mid + 1, blo)
        pos[bi] = bhi
    return pos


def cross_cut_collection_hybrid(
    r_collection: "SetCollection",
    index: "HybridInvertedIndex",
    sink: "PairSink",
    stats: Optional["JoinStats"] = None,
) -> None:
    """Cross-cut every record in supersteps, routing probes by representation.

    Same superstep skeleton as :func:`cross_cut_collection_csr` — setup,
    per-record ``found``/``next_max`` reductions, compaction, the
    single-element short-circuit and the straggler tail — but each slot
    probes through its list's representation:

    * slots over *dense* elements go to :func:`bitmap_gap_lookup`; the few
      gaps escaping the two-word window are settled by one batched
      ``searchsorted`` on the CSR arrays;
    * slots over *sparse* elements gallop from per-slot cursors
      (:func:`gallop_first_geq`), with one global ``searchsorted``
      finishing window escapees, and classify through
      :func:`batch_gap_lookup` as usual.

    Every fallback is exact, so per-record candidate sequences — and the
    pair set, probe count, and round count — are identical to the scalar
    loop and to the CSR kernel.
    """
    inf_sid = index.inf_sid
    universe = index.universe
    if len(universe) == 0:
        return
    first_sid = int(universe[0])

    rec_rids = []
    rec_lens = []
    base_parts = []
    start_parts = []
    end_parts = []
    single_rids = []
    # lint: scalar-fallback (one-time setup pass over R records, not probe work)
    for rid, record in enumerate(r_collection):
        probe = index.record_probe(record)
        if probe is None:
            continue
        bases, starts, ends = probe
        if bases.shape[0] == 1:
            single_rids.append(rid)
            continue
        rec_rids.append(rid)
        rec_lens.append(bases.shape[0])
        base_parts.append(bases)
        start_parts.append(starts)
        end_parts.append(ends)
    if single_rids:
        _emit_single_element_records(r_collection, index, sink, single_rids)
    if not rec_rids:
        reg = _obs.ACTIVE
        if reg is not None and single_rids:
            reg.inc("kernel.single_element_records", len(single_rids))
        return

    # Same ascending-by-list-count order as the CSR kernel (see there).
    order = np.argsort(np.asarray(rec_lens, dtype=np.int64), kind="stable")
    # lint: scalar-fallback (k-way gather of per-record arrays; one iteration per record)
    slot_base = np.concatenate([base_parts[i] for i in order])
    # lint: scalar-fallback (same per-record gather as slot_base)
    slot_end = np.concatenate([end_parts[i] for i in order])
    # lint: scalar-fallback (same per-record gather as slot_base)
    cursors = np.concatenate([start_parts[i] for i in order]).astype(np.int64)
    rec_rid = np.asarray(rec_rids, dtype=np.int64)[order]
    rec_k = np.asarray(rec_lens, dtype=np.int64)[order]
    rec_off = np.zeros(rec_k.shape[0], dtype=np.int64)
    np.cumsum(rec_k[:-1], out=rec_off[1:])
    slot_rec = np.repeat(np.arange(rec_k.shape[0]), rec_k)
    cand = np.full(rec_k.shape[0], first_sid, dtype=np.int64)
    col_lo = _column_bounds(rec_k)

    keyed = index.keyed
    bitmap = index.bitmap
    words = index.bitmap_words
    # Representation routing per slot: bitmap row index, -1 for sparse.
    # The flattened bitmap offsets of the dense rows (row * words) only
    # change on compaction, so they are maintained here rather than
    # recomputed inside every superstep.
    slot_row = index.dense_map[slot_base // index.stride]
    dense_slots = np.flatnonzero(slot_row >= 0)
    sparse_slots = np.flatnonzero(slot_row < 0)
    dense_rows = slot_row[dense_slots]
    slot_row_base = slot_row * words
    dense_base = dense_rows * words

    searches = 0
    rounds = 0
    supersteps = 0
    stragglers = 0
    ss_calls = 0
    bitmap_probes = 0
    bitmap_fallbacks = 0
    gallop_probes = 0
    gallop_fallbacks = 0
    # lint: scalar-fallback (superstep driver: one iteration advances every
    # alive record by a whole round through batched numpy calls)
    while cand.shape[0]:
        supersteps += 1
        rounds += cand.shape[0]
        slot_cand = cand[slot_rec]
        n_slots = slot_cand.shape[0]
        searches += n_slots

        if n_slots < _HYBRID_MIN_BATCH:
            # Adaptive bypass: below the crossover batch size the fixed
            # dispatch cost of the bitmap/gallop pipelines exceeds one C
            # searchsorted over all slots, so small supersteps (the long
            # tail of a join) take the plain CSR step. Candidates advance
            # identically either way, and the positions double as valid
            # gallop cursors for any later vectorized superstep.
            ss_calls += 1
            cursors = batch_first_geq(keyed, slot_base, slot_cand)
            hit, gap = batch_gap_lookup(
                keyed, slot_base, slot_end, cursors, slot_cand, inf_sid
            )
        elif sparse_slots.shape[0] == 0:
            # All-dense superstep (the common shape on heavily skewed
            # data, where surviving records hold only top elements): probe
            # the bitmap rows directly, with no routing gather/scatter.
            bitmap_probes += n_slots
            hit, gap = _bitmap_gap_inbounds(
                bitmap, words, slot_row_base, slot_cand, inf_sid
            )
            unresolved = gap < 0
            if unresolved.any():
                u = np.flatnonzero(unresolved)
                bitmap_fallbacks += u.shape[0]
                ss_calls += 1
                fb_keys = slot_base[u] + slot_cand[u] + hit[u]
                pos_fb = np.searchsorted(keyed, fb_keys, side="left")
                at_end = pos_fb >= slot_end[u]
                safe = np.minimum(pos_fb, max(keyed.shape[0] - 1, 0))
                gap[u] = np.where(at_end, inf_sid, keyed[safe] - slot_base[u])
        else:
            hit = np.empty(n_slots, dtype=bool)
            gap = np.empty(n_slots, dtype=np.int64)

            sp = sparse_slots
            if sp.shape[0]:
                gallop_probes += sp.shape[0]
                keys = slot_base[sp] + slot_cand[sp]
                pos_sp = gallop_first_geq(keyed, cursors[sp], slot_end[sp], keys)
                overran = pos_sp < 0
                if overran.any():
                    u = np.flatnonzero(overran)
                    gallop_fallbacks += u.shape[0]
                    ss_calls += 1
                    pos_sp[u] = np.searchsorted(keyed, keys[u], side="left")
                hit_sp, gap_sp = batch_gap_lookup(
                    keyed, slot_base[sp], slot_end[sp], pos_sp, slot_cand[sp],
                    inf_sid,
                )
                hit[sp] = hit_sp
                gap[sp] = gap_sp
                cursors[sp] = pos_sp

            d = dense_slots
            if d.shape[0]:
                bitmap_probes += d.shape[0]
                hit_d, gap_d = _bitmap_gap_inbounds(
                    bitmap, words, dense_base, slot_cand[d], inf_sid
                )
                unresolved = gap_d < 0
                if unresolved.any():
                    u = np.flatnonzero(unresolved)
                    bitmap_fallbacks += u.shape[0]
                    ss_calls += 1
                    du = d[u]
                    # First entry >= target (+1 past a hit): the exact gap,
                    # straight off the sorted CSR arrays.
                    fb_keys = slot_base[du] + slot_cand[du] + hit_d[u]
                    pos_fb = np.searchsorted(keyed, fb_keys, side="left")
                    at_end = pos_fb >= slot_end[du]
                    safe = np.minimum(pos_fb, max(keyed.shape[0] - 1, 0))
                    gap_d[u] = np.where(
                        at_end, inf_sid, keyed[safe] - slot_base[du]
                    )
                hit[d] = hit_d
                gap[d] = gap_d

        found, next_cand = _segment_reduce(hit, gap, rec_off, col_lo)
        if found.any():
            sink.add_pairs(rec_rid[found], cand[found])
        cand = next_cand
        alive = cand < inf_sid
        n_alive = int(alive.sum())
        if n_alive == 0:
            break
        if n_alive < cand.shape[0]:
            slot_alive = alive[slot_rec]
            slot_base = slot_base[slot_alive]
            slot_end = slot_end[slot_alive]
            cursors = cursors[slot_alive]
            slot_row = slot_row[slot_alive]
            rec_rid = rec_rid[alive]
            rec_k = rec_k[alive]
            cand = cand[alive]
            rec_off = np.zeros(rec_k.shape[0], dtype=np.int64)
            np.cumsum(rec_k[:-1], out=rec_off[1:])
            slot_rec = np.repeat(np.arange(rec_k.shape[0]), rec_k)
            col_lo = _column_bounds(rec_k)
            dense_slots = np.flatnonzero(slot_row >= 0)
            sparse_slots = np.flatnonzero(slot_row < 0)
            dense_rows = slot_row[dense_slots]
            slot_row_base = slot_row * words
            dense_base = dense_rows * words
        if cand.shape[0] <= _STRAGGLER_WIDTH and supersteps >= _STRAGGLER_SUPERSTEPS:
            # Long-tail join: finish the survivors on the scalar loop.
            from ..core.framework import cross_cut_record

            stragglers = cand.shape[0]
            # lint: scalar-fallback (deliberate straggler tail: <=
            # _STRAGGLER_WIDTH survivors finish on the scalar loop where
            # per-round numpy call overhead would dominate)
            for i in range(cand.shape[0]):
                rid = int(rec_rid[i])
                # lint: scalar-fallback (straggler tail: python lists feed cross_cut_record)
                lists = [
                    index.get_list(e).tolist() for e in r_collection[rid]
                ]
                cross_cut_record(
                    rid, lists, int(cand[i]), inf_sid, sink, False, stats
                )
            break
    if stats is not None:
        stats.binary_searches += searches
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("kernel.searchsorted_calls", ss_calls)
        reg.inc("kernel.probes", searches)
        reg.inc("kernel.supersteps", supersteps)
        reg.inc("kernel.single_element_records", len(single_rids))
        reg.inc("kernel.straggler_records", stragglers)
        reg.inc("kernel.bitmap_probes", bitmap_probes)
        reg.inc("kernel.bitmap_fallbacks", bitmap_fallbacks)
        reg.inc("kernel.gallop_probes", gallop_probes)
        reg.inc("kernel.gallop_fallbacks", gallop_fallbacks)
