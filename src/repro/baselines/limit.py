"""LIMIT+ — PRETTI with a bounded prefix tree and an adaptive stop
(Bouros, Mamoulis, Ge & Terrovitis, KAIS'16; paper §VII).

Two ideas on top of PRETTI:

* **Limited prefix.** Only the first ``limit`` elements of every ``R`` set
  (in the global order) enter the prefix tree, so the tree stays small; sets
  longer than the limit are *verified* against the candidate list collected
  at their truncated leaf.
* **Adaptive stop.** While descending, if the candidate list has already
  shrunk below the expected cost of the remaining intersections, intersecting
  further is wasted work — stop and verify the candidates directly.

The authors' trained cost model is not available offline, so the stop rule
here is the analytic core of theirs: stop at a node when
``|candidates| * (sets below) <= Σ |I[e]| of the remaining tree levels``
approximated by ``|candidates| <= stop_threshold`` (the trained model
reduces to a near-constant threshold on their workloads). This substitution
is recorded in DESIGN.md §5.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.order import GlobalOrder, build_order
from ..core.stats import JoinStats
from ..core.verify import is_subset_sorted
from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree, TreeNode
from ..index.search import intersect_sorted, intersect_sorted_merge

__all__ = ["limit_join", "DEFAULT_LIMIT", "DEFAULT_STOP_THRESHOLD"]

DEFAULT_LIMIT = 4
DEFAULT_STOP_THRESHOLD = 8


def _collect_rids(node: TreeNode) -> List[int]:
    """Every rid at or below ``node`` (truncated leaves included)."""
    rids: List[int] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if n.terminal_rids is not None:
            rids.extend(n.terminal_rids)
        stack.extend(n.children)
    return rids


def limit_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    limit: int = DEFAULT_LIMIT,
    stop_threshold: int = DEFAULT_STOP_THRESHOLD,
    order: Optional[GlobalOrder] = None,
    index: Optional[InvertedIndex] = None,
    gallop: bool = False,
    stats: Optional[JoinStats] = None,
) -> None:
    """Bounded-prefix PRETTI with candidate verification.

    ``gallop=True`` swaps the faithful linear-merge intersection for a
    skipping one (ablation; see :mod:`repro.index.search`).
    """
    intersect = intersect_sorted if gallop else intersect_sorted_merge
    if index is None:
        index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    if order is None:
        universe = max(r_collection.max_element(), s_collection.max_element()) + 1
        order = build_order(s_collection, kind="freq_desc", universe=universe)

    tree = PrefixTree(order)
    truncated = [False] * len(r_collection)
    for rid, record in enumerate(r_collection):
        ordered = order.sort_record(record)
        truncated[rid] = len(ordered) > limit
        tree.insert(ordered[:limit], rid)
    if stats is not None:
        stats.tree_nodes += tree.num_nodes

    r_records = r_collection.records
    s_records = s_collection.records
    touched = 0
    candidates_checked = 0

    def verify_and_emit(rids: Sequence[int], sids: Sequence[int]) -> None:
        nonlocal candidates_checked
        add = sink.add
        for rid in rids:
            record = r_records[rid]
            if truncated[rid]:
                for sid in sids:
                    candidates_checked += 1
                    if is_subset_sorted(record, s_records[sid]):
                        add(rid, sid)
            else:
                # The whole set is on the tree path: every candidate is a
                # verified superset already.
                sink.add_sids(rid, sids)

    universe = index.universe
    stack: List[Tuple[TreeNode, Sequence[int]]] = [(tree.root, universe)]
    while stack:
        node, current = stack.pop()
        for e in node.elements:
            lst = index[e]
            if not lst:
                current = ()
                break
            if current is universe:
                current = lst
            else:
                touched += len(current) if gallop else len(current) + len(lst)
                current = intersect(current, lst)
        if not current:
            continue
        if node.terminal_rids is not None:
            verify_and_emit(node.terminal_rids, current)
            continue
        if current is not universe and len(current) <= stop_threshold:
            # Adaptive stop: candidates are few, verify the whole subtree
            # instead of intersecting further.
            # Every set below still has unchecked elements (the rest of its
            # tree path, plus its post-limit suffix if truncated), so a full
            # subset verification covers both at once.
            add = sink.add
            for rid in _collect_rids(node):
                record = r_records[rid]
                for sid in current:
                    candidates_checked += 1
                    if is_subset_sorted(record, s_records[sid]):
                        add(rid, sid)
            continue
        for child in node.children:
            stack.append((child, current))
    if stats is not None:
        stats.entries_touched += touched
        stats.candidates += candidates_checked
