"""DCJ — Divide-and-Conquer set Join (Melnik & Garcia-Molina, EDBT'02;
paper §VII).

The second classic union-oriented method next to PSJ. Pick a pivot
element ``e`` and split both sides by whether they contain it:

* ``R`` sets **without** ``e`` can be contained in any ``S`` set → they
  recurse against *all* of ``S``;
* ``R`` sets **with** ``e`` can only be contained in ``S`` sets that also
  have ``e`` → they recurse against that half only.

So each level produces the subproblems ``(R∅, S∅)``, ``(R∅, Sₑ)`` and
``(Rₑ, Sₑ)`` — the replication of ``R∅`` is the method's cost, and
exactly why the partition-based union-oriented family lost to
intersection-oriented methods (§VII). Small subproblems fall back to
nested-loop verification.

Pivots are chosen by descending frequency (the most discriminating split
first); within a subproblem the pivot element is removed from further
consideration via the depth index into the frequency order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.order import build_order
from ..core.stats import JoinStats
from ..core.verify import is_subset_sorted
from ..data.collection import SetCollection
from ..errors import InvalidParameterError

__all__ = ["dcj_join"]

#: Subproblems at or below this |R|*|S| are verified by nested loop.
DEFAULT_LEAF_SIZE = 64


def dcj_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    stats: Optional[JoinStats] = None,
) -> None:
    """Divide-and-conquer containment join."""
    if leaf_size < 1:
        raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
    if not len(r_collection) or not len(s_collection):
        return
    universe = max(r_collection.max_element(), s_collection.max_element()) + 1
    order = build_order(s_collection, universe=universe)
    # Pivot schedule: elements by descending frequency in S.
    pivots = sorted(range(universe), key=order.rank.__getitem__)

    r_records = r_collection.records
    s_records = s_collection.records
    r_sets = [frozenset(rec) for rec in r_records]
    s_sets = [frozenset(rec) for rec in s_records]
    candidates = 0
    add = sink.add

    # Explicit stack of (r_ids, s_ids, pivot depth) subproblems.
    stack: List[Tuple[Sequence[int], Sequence[int], int]] = [
        (range(len(r_records)), range(len(s_records)), 0)
    ]
    while stack:
        r_ids, s_ids, depth = stack.pop()
        if not r_ids or not s_ids:
            continue
        if len(r_ids) * len(s_ids) <= leaf_size or depth >= len(pivots):
            for rid in r_ids:
                record = r_records[rid]
                for sid in s_ids:
                    candidates += 1
                    if is_subset_sorted(record, s_records[sid]):
                        add(rid, sid)
            continue
        pivot = pivots[depth]
        depth += 1
        r_with = [rid for rid in r_ids if pivot in r_sets[rid]]
        s_with = [sid for sid in s_ids if pivot in s_sets[sid]]
        if not r_with and not s_with:
            # Pivot absent from this subproblem entirely: skip ahead.
            stack.append((r_ids, s_ids, depth))
            continue
        r_without = [rid for rid in r_ids if pivot not in r_sets[rid]]
        s_without = [sid for sid in s_ids if pivot not in s_sets[sid]]
        # R∅ can be contained on either side of the S split...
        stack.append((r_without, s_without, depth))
        stack.append((r_without, s_with, depth))
        # ...but Rₑ only in Sₑ.
        stack.append((r_with, s_with, depth))
    if stats is not None:
        stats.candidates += candidates
