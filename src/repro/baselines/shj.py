"""SHJ — Signature-Hash Join (Helmer & Moerkotte, VLDB'97; paper §I & §VII).

The canonical *union-oriented* method. Every set is condensed to a ``b``-bit
bitmap signature (each element hashes to one bit); ``R ⊆ S`` implies
``sig(R) & ~sig(S) == 0``. The ``R`` sets are bucketed by signature; for
each ``S``, **every sub-signature** of ``sig(S)`` is enumerated and the
matching buckets verified.

The sub-signature enumeration is ``2^popcount(sig(S))`` — the exponential
blow-up the paper cites as the reason union-oriented methods lost
(§I: "highly inefficient"). Keep ``bits`` small or sets short; the
``test_extra_union_oriented`` bench shows the blow-up on purpose.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.stats import JoinStats
from ..core.verify import is_subset_sorted
from ..data.collection import SetCollection
from ..errors import InvalidParameterError

__all__ = ["shj_join", "signature_of"]


def signature_of(record, bits: int) -> int:
    """Fold a record into a ``bits``-wide bitmap signature.

    Elements map to bits with a multiplicative hash so consecutive element
    ids do not collide into consecutive bits.
    """
    sig = 0
    for e in record:
        sig |= 1 << ((e * 2654435761) % bits)
    return sig


def shj_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    bits: int = 16,
    stats: Optional[JoinStats] = None,
) -> None:
    """Bucket ``R`` by signature; enumerate sub-signatures of each ``S``."""
    if not 1 <= bits <= 24:
        raise InvalidParameterError(
            f"bits must be in [1, 24] (the enumeration is 2^bits), got {bits}"
        )
    buckets: Dict[int, List[int]] = {}
    for rid, record in enumerate(r_collection):
        sig = signature_of(record, bits)
        buckets.setdefault(sig, []).append(rid)

    r_records = r_collection.records
    add = sink.add
    candidates = 0
    for sid, s_record in enumerate(s_collection):
        mask = signature_of(s_record, bits)
        # Standard submask enumeration: every sig(R) with
        # sig(R) & ~mask == 0 is visited exactly once.
        sub = mask
        while True:
            bucket = buckets.get(sub)
            if bucket is not None:
                for rid in bucket:
                    candidates += 1
                    if is_subset_sorted(r_records[rid], s_record):
                        add(rid, sid)
            if sub == 0:
                break
            sub = (sub - 1) & mask
    if stats is not None:
        stats.candidates += candidates
