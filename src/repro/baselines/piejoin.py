"""PIEJoin — prefix-tree interval join (Kunkel, Rheinländer, Schiefer,
Helmer, Bouros & Leser, SSDBM'16; paper §VII).

The last intersection-oriented competitor the paper surveys: instead of
inverted lists of *set ids*, PIEJoin indexes the prefix tree of ``S``. Every
tree node gets a preorder interval covering its subtree, and each element
maps to the (disjoint) intervals of the nodes labelled with it. Because a
set's elements appear in global order along its tree path, ``R ⊆ S`` holds
exactly when R's ordered elements can be matched by a chain of nested
intervals; the join therefore intersects *interval lists* instead of id
lists, and the index on ``S`` shrinks from one entry per token to one entry
per tree node (the paper's "uses a tree structure to reduce the size of the
inverted index on S").

Interval chains are expanded breadth-first per element: for each surviving
interval, the next element's nodes nested inside it are found by binary
search on their (sorted, disjoint) start positions. Every ``S`` set whose
end marker falls inside a fully matched chain's final interval is a result
— no verification needed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from ..core.order import GlobalOrder, build_order
from ..core.stats import JoinStats
from ..data.collection import SetCollection
from ..index.prefix_tree import PrefixTree, TreeNode

__all__ = ["pie_join", "PieIndex"]


class PieIndex:
    """Preorder-interval index over the prefix tree of ``S``.

    Attributes
    ----------
    starts, ends:
        Per element, parallel sorted lists: the preorder interval
        ``[starts[e][i], ends[e][i])`` belongs to the i-th tree node
        labelled ``e``. Intervals of one element are pairwise disjoint
        (an element occurs at most once on any path).
    flat_sids:
        End-marker set ids in preorder; the sets below any node form the
        slice ``flat_sids[lo:hi]`` of its interval.
    """

    def __init__(self, s_collection: SetCollection, order: GlobalOrder) -> None:
        tree = PrefixTree.build(s_collection, order)
        self.num_nodes = tree.num_nodes
        self.starts: Dict[int, List[int]] = {}
        self.ends: Dict[int, List[int]] = {}
        self.flat_sids: List[int] = []
        self.root_interval: Tuple[int, int] = (0, 0)
        self._build(tree)

    def _build(self, tree: PrefixTree) -> None:
        flat = self.flat_sids
        closes: List[Tuple[int, int, int]] = []  # (element, start, end)
        # Two-phase DFS: record each node's start on the way down (the
        # number of end markers emitted so far), close its interval on the
        # way back up.
        work: List[Tuple[TreeNode, bool]] = [(tree.root, False)]
        opened: Dict[int, int] = {}
        while work:
            node, done = work.pop()
            if done:
                start = opened.pop(id(node))
                for e in node.elements:
                    closes.append((e, start, len(flat)))
                continue
            opened[id(node)] = len(flat)
            if node.terminal_rids is not None:
                flat.extend(node.terminal_rids)
            work.append((node, True))
            for child in node.children:
                work.append((child, False))
        for e, start, end in closes:
            self.starts.setdefault(e, []).append(start)
            self.ends.setdefault(e, []).append(end)
        # Intervals were appended in close (postorder) order; the matcher
        # binary-searches them by start position.
        for e in self.starts:
            pairs = sorted(zip(self.starts[e], self.ends[e]))
            self.starts[e] = [p[0] for p in pairs]
            self.ends[e] = [p[1] for p in pairs]
        self.root_interval = (0, len(flat))

    def intervals_of(self, element: int) -> Tuple[List[int], List[int]]:
        """Sorted start/end position lists of ``element``'s tree nodes."""
        return self.starts.get(element, []), self.ends.get(element, [])


def pie_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    order: Optional[GlobalOrder] = None,
    index: Optional[PieIndex] = None,
    stats: Optional[JoinStats] = None,
) -> None:
    """Interval-chain set containment join over the ``S`` prefix tree."""
    if order is None:
        universe = max(r_collection.max_element(), s_collection.max_element()) + 1
        order = build_order(s_collection, kind="freq_asc", universe=universe)
    if index is None:
        index = PieIndex(s_collection, order)
        if stats is not None:
            stats.tree_nodes += index.num_nodes
            stats.index_build_tokens += s_collection.total_tokens()

    flat = index.flat_sids
    searches = 0
    touched = 0
    for rid, record in enumerate(r_collection):
        ordered = order.sort_record(record)
        # Current chain frontier: disjoint intervals, sorted by start.
        cur_starts, cur_ends = index.intervals_of(ordered[0])
        touched += len(cur_starts)
        alive = bool(cur_starts)
        for e in ordered[1:]:
            if not alive:
                break
            nxt_starts, nxt_ends = index.intervals_of(e)
            if not nxt_starts:
                alive = False
                break
            keep_s: List[int] = []
            keep_e: List[int] = []
            for a, b in zip(cur_starts, cur_ends):
                lo = bisect_left(nxt_starts, a)
                hi = bisect_right(nxt_starts, b - 1, lo)
                searches += 2
                if lo < hi:
                    keep_s.extend(nxt_starts[lo:hi])
                    keep_e.extend(nxt_ends[lo:hi])
                    touched += hi - lo
            cur_starts, cur_ends = keep_s, keep_e
            alive = bool(cur_starts)
        if alive:
            for a, b in zip(cur_starts, cur_ends):
                if b > a:
                    sink.add_sids(rid, flat[a:b])
    if stats is not None:
        stats.binary_searches += searches
        stats.entries_touched += touched
