"""Reimplemented competitors (paper §VII)."""

from .bnl import bnl_join
from .dcj import dcj_join
from .limit import limit_join
from .naive import naive_join
from .piejoin import PieIndex, pie_join
from .pretti import pretti_join
from .psj import psj_join
from .shj import shj_join
from .ttjoin import tt_join

__all__ = [
    "naive_join",
    "bnl_join",
    "pretti_join",
    "limit_join",
    "tt_join",
    "pie_join",
    "PieIndex",
    "shj_join",
    "psj_join",
    "dcj_join",
]
