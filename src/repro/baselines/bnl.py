"""BNL — block nested loop with inverted-list intersection (Mamoulis,
SIGMOD'03; paper §VII).

The original intersection-oriented method: build the inverted index on
``S``, then for each ``R`` intersect its inverted lists *one by one*
("rip-cutting", shortest list first). Every entry of every intermediate list
is touched, which is exactly the cost the cross-cutting framework avoids.
"""

from __future__ import annotations

from typing import Optional

from ..core.stats import JoinStats
from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..index.search import intersect_sorted, intersect_sorted_merge

__all__ = ["bnl_join"]


def bnl_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    index: Optional[InvertedIndex] = None,
    gallop: bool = False,
    stats: Optional[JoinStats] = None,
) -> None:
    """Rip-cutting intersection join.

    ``gallop=True`` swaps the faithful linear-merge intersection for a
    skipping one — the ablation showing how much of LCJoin's advantage is
    pure intersection skipping.
    """
    if index is None:
        index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    intersect = intersect_sorted if gallop else intersect_sorted_merge
    touched = 0
    for rid, record in enumerate(r_collection):
        lists = sorted(index.get_lists(record), key=len)
        if not lists or not lists[0]:
            continue
        result = lists[0]
        touched += len(result)
        for lst in lists[1:]:
            touched += len(lst) if not gallop else len(result)
            result = intersect(result, lst)
            if not result:
                break
        if result:
            sink.add_sids(rid, result)
    if stats is not None:
        stats.entries_touched += touched
