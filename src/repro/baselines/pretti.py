"""PRETTI — prefix tree + top-down list intersection (Jampani & Pudi,
DASFAA'05; paper §VII).

``R`` is indexed with a prefix tree, ``S`` with an inverted index. The tree
is walked depth-first; each node intersects its parent's running candidate
list with its own inverted list, so sets sharing a prefix share the
intersections. Whenever an end-marker is reached, the running list *is* the
superset list of those sets.

PRETTI uses the **descending**-frequency global order: frequent elements
near the root maximise prefix sharing, at the price of large intermediate
candidate lists high in the tree (the trade-off LIMIT+ was built to fix,
and the source of the memory fragmentation the paper's Fig 10 observes).
The order is an ablation knob in the benchmarks.

This is the classic "rip-cutting" competitor: every intermediate candidate
list is fully materialised, which is both its cost (entries touched) and the
source of its memory fragmentation that the paper's Fig 10 measures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.order import GlobalOrder, build_order
from ..core.stats import JoinStats
from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree, TreeNode
from ..index.search import intersect_sorted, intersect_sorted_merge

__all__ = ["pretti_join"]


def _emit(sink, rids: Sequence[int], sids: Sequence[int]) -> None:
    for rid in rids:
        sink.add_sids(rid, sids)


def pretti_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    order: Optional[GlobalOrder] = None,
    index: Optional[InvertedIndex] = None,
    tree: Optional[PrefixTree] = None,
    patricia: bool = False,
    gallop: bool = False,
    stats: Optional[JoinStats] = None,
) -> None:
    """Top-down shared list intersection over the prefix tree.

    ``gallop=True`` swaps the faithful linear-merge intersection for a
    skipping one (ablation; see :mod:`repro.index.search`).
    """
    if index is None:
        index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    if order is None:
        universe = max(r_collection.max_element(), s_collection.max_element()) + 1
        order = build_order(s_collection, kind="freq_desc", universe=universe)
    if tree is None:
        tree = PrefixTree.build(r_collection, order, compress=patricia)
    if stats is not None:
        stats.tree_nodes += tree.num_nodes

    intersect = intersect_sorted if gallop else intersect_sorted_merge
    touched = 0
    universe = index.universe
    # DFS over (node, candidate list inherited from the parent).
    stack: List[Tuple[TreeNode, Sequence[int]]] = [(tree.root, universe)]
    while stack:
        node, current = stack.pop()
        for e in node.elements:
            lst = index[e]
            if not lst:
                current = ()
                break
            # The root's child inherits the full universe; intersecting with
            # it would copy the whole inverted list, so alias instead.
            if current is universe:
                current = lst
            else:
                touched += len(current) if gallop else len(current) + len(lst)
                current = intersect(current, lst)
        if not current:
            continue
        if node.terminal_rids is not None:
            _emit(sink, node.terminal_rids, current)
            continue
        for child in node.children:
            stack.append((child, current))
    if stats is not None:
        stats.entries_touched += touched
