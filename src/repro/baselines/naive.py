"""Naive nested-loop set containment join.

The quadratic reference implementation: every ``(R, S)`` pair is tested with
a sorted-merge subset check. It exists as the trusted ground truth for the
test suite and as the degenerate baseline in the union-vs-intersection
benchmark; it is never competitive beyond toy sizes.
"""

from __future__ import annotations

from typing import Optional

from ..core.stats import JoinStats
from ..core.verify import is_subset_sorted
from ..data.collection import SetCollection

__all__ = ["naive_join"]


def naive_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    stats: Optional[JoinStats] = None,
) -> None:
    """Test every pair; emit the containments."""
    s_records = s_collection.records
    candidates = 0
    for rid, record in enumerate(r_collection):
        for sid, s_record in enumerate(s_records):
            candidates += 1
            if is_subset_sorted(record, s_record):
                sink.add(rid, sid)
    if stats is not None:
        stats.candidates += candidates
