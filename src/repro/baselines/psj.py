"""PSJ — Partitioned Set Join (Ramasamy, Patel, Naughton & Kaushik,
VLDB'00; paper §VII).

A hash function maps elements onto ``num_partitions`` buckets. Every ``R``
set lands in exactly one bucket — that of one designated element (here its
first element, any fixed choice works) — while every ``S`` set is
*replicated* into the bucket of each of its distinct element hashes, since a
superset must contain the designated element whatever it is. Pairs are then
verified bucket-locally.

The replication of ``S`` and the residual quadratic verification inside
buckets are why partition-based union-oriented methods fell behind
(paper §VII); the extra benchmark shows it directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.stats import JoinStats
from ..core.verify import is_subset_sorted
from ..data.collection import SetCollection
from ..errors import InvalidParameterError

__all__ = ["psj_join"]


def _bucket_of(element: int, num_partitions: int) -> int:
    return (element * 2654435761) % num_partitions


def psj_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    num_partitions: int = 64,
    stats: Optional[JoinStats] = None,
) -> None:
    """Partition, replicate ``S``, verify within buckets."""
    if num_partitions < 1:
        raise InvalidParameterError(
            f"num_partitions must be >= 1, got {num_partitions}"
        )
    r_buckets: Dict[int, List[int]] = {}
    for rid, record in enumerate(r_collection):
        b = _bucket_of(record[0], num_partitions)
        r_buckets.setdefault(b, []).append(rid)

    s_buckets: Dict[int, List[int]] = {}
    for sid, record in enumerate(s_collection):
        seen = set()
        for e in record:
            b = _bucket_of(e, num_partitions)
            if b not in seen:
                seen.add(b)
                s_buckets.setdefault(b, []).append(sid)

    r_records = r_collection.records
    s_records = s_collection.records
    add = sink.add
    candidates = 0
    for b, rids in r_buckets.items():
        sids = s_buckets.get(b)
        if not sids:
            continue
        for rid in rids:
            record = r_records[rid]
            for sid in sids:
                candidates += 1
                if is_subset_sorted(record, s_records[sid]):
                    add(rid, sid)
    if stats is not None:
        stats.candidates += candidates
