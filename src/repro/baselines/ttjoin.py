"""TT-Join — tree-tree signature join (Yang et al., ICDE'17 / VLDBJ'18;
paper §VII).

For each ``R``, the signature is its ``k`` **least frequent** elements
(``k = 3`` in the paper's experiments). A prefix tree is built on the
signatures (ordered ascending by frequency, so the signature is simply each
set's first ``k`` elements in that order) and a second prefix tree on the
full ``S`` sets in the same order. The two trees are traversed
simultaneously: wherever a signature path embeds as a subsequence of an
``S`` path, every ``S`` set at or below that point is a candidate for every
``R`` set carrying the signature, and candidates are verified with a subset
check.

Implementation: one DFS over the ``S`` tree carrying the list of signature
nodes still *active* on the current path. Descending an ``S`` edge with
element ``e`` turns each active node into (a) its ``e``-child if it has one
— a signature element consumed; completed signatures emit right here, since
the subtree span below covers every deeper ``S`` set — and (b) itself, kept
alive only while some signature below it still needs an element ranked
after ``e`` (element ids grow monotonically along both trees' paths, so
lower-ranked needs can never be met deeper). The embedding of a sorted
signature into a sorted path is unique, hence no duplicate candidates.

The paper's Fig 10 observes TT-Join's "two sparse tree structures" cost it
memory — this reproduction keeps both trees too, plus the per-node sid spans
used to enumerate candidate subtrees in O(answer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.order import GlobalOrder, build_order
from ..core.stats import JoinStats
from ..core.verify import is_subset_sorted
from ..data.collection import SetCollection
from ..index.prefix_tree import PrefixTree, TreeNode

__all__ = ["tt_join", "DEFAULT_K"]

DEFAULT_K = 3


def _sid_spans(tree: PrefixTree) -> Tuple[List[int], Dict[int, Tuple[int, int]]]:
    """Flatten terminal sids into DFS order; give every node its span.

    ``spans[id(node)] = (lo, hi)`` such that ``flat[lo:hi]`` are exactly the
    sids at or below ``node`` — the classic Euler-interval trick, letting the
    matcher turn "all sets under this subtree" into a slice.
    """
    flat: List[int] = []
    spans: Dict[int, Tuple[int, int]] = {}
    # Two-phase stack: record the start offset on the way down, close the
    # span on the way back up.
    stack: List[Tuple[TreeNode, bool]] = [(tree.root, False)]
    starts: Dict[int, int] = {}
    while stack:
        node, processed = stack.pop()
        if not processed:
            starts[id(node)] = len(flat)
            if node.terminal_rids is not None:
                flat.extend(node.terminal_rids)
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
        else:
            spans[id(node)] = (starts.pop(id(node)), len(flat))
    return flat, spans


class _SigNode:
    """Signature-tree node in matcher-friendly form.

    ``end_rids`` are the R ids whose signature completes here; ``children``
    maps the next signature element to the deeper node; ``max_needed`` is
    the largest element rank any signature below still needs — the pruning
    bound for skip-descent.
    """

    __slots__ = ("children", "end_rids", "max_needed")

    def __init__(self) -> None:
        self.children: Dict[int, "_SigNode"] = {}
        self.end_rids: Optional[List[int]] = None
        self.max_needed = -1


def _build_sig_tree(
    r_collection: SetCollection, order: GlobalOrder, k: int
) -> Tuple[_SigNode, int]:
    """Prefix tree over the k-least-frequent-element signatures."""
    rank = order.rank
    root = _SigNode()
    num_nodes = 1
    for rid, record in enumerate(r_collection):
        ordered = order.sort_record(record)[:k]
        node = root
        for e in ordered:
            child = node.children.get(e)
            if child is None:
                child = _SigNode()
                node.children[e] = child
                num_nodes += 1
            r = rank[e]
            if r > node.max_needed:
                node.max_needed = r
            node = child
        if node.end_rids is None:
            node.end_rids = []
        node.end_rids.append(rid)
    # Propagate max_needed upward: a node must stay active while anything
    # in its subtree still needs a later element.
    def finalize(node: _SigNode) -> int:
        best = node.max_needed
        for child in node.children.values():
            sub = finalize(child)
            if sub > best:
                best = sub
        node.max_needed = best
        return best

    # k is small (3 by default), so recursion depth is bounded by k.
    finalize(root)
    return root, num_nodes


def tt_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    k: int = DEFAULT_K,
    order: Optional[GlobalOrder] = None,
    stats: Optional[JoinStats] = None,
) -> None:
    """Signature tree vs data tree join with verification."""
    if k < 1:
        from ..errors import InvalidParameterError

        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if order is None:
        universe = max(r_collection.max_element(), s_collection.max_element()) + 1
        order = build_order(s_collection, kind="freq_asc", universe=universe)

    sig_root, sig_nodes = _build_sig_tree(r_collection, order, k)
    s_tree = PrefixTree.build(s_collection, order)
    flat_sids, spans = _sid_spans(s_tree)
    if stats is not None:
        stats.tree_nodes += sig_nodes + s_tree.num_nodes
        # Both trees are construction work, like the others' inverted index.
        stats.index_build_tokens += s_collection.total_tokens()
        stats.index_build_tokens += sum(
            min(k, len(rec)) for rec in r_collection
        )

    rank = order.rank
    r_records = r_collection.records
    s_records = s_collection.records
    add = sink.add
    candidates = 0
    # Unit work of the simultaneous traversal: one (S-node, active
    # signature-node) check; plus the verification scans. Without these the
    # method's dominant costs would be invisible to the cost comparison.
    touched = 0

    # DFS over the S tree, carrying the signature nodes active on this path.
    stack: List[Tuple[TreeNode, List[_SigNode]]] = [(s_tree.root, [sig_root])]
    while stack:
        ns, active = stack.pop()
        for cs in ns.children:
            if cs.terminal_rids is not None:
                continue
            e = cs.elements[0]
            rank_e = rank[e]
            surviving: List[_SigNode] = []
            for nr in active:
                touched += 1
                matched = nr.children.get(e)
                if matched is not None:
                    if matched.end_rids is not None:
                        # Signature complete at cs: candidates are every S
                        # set at or below this node.
                        lo, hi = spans[id(cs)]
                        for rid in matched.end_rids:
                            record = r_records[rid]
                            touched += (hi - lo) * len(record)
                            for j in range(lo, hi):
                                sid = flat_sids[j]
                                candidates += 1
                                if is_subset_sorted(record, s_records[sid]):
                                    add(rid, sid)
                    if matched.children:
                        surviving.append(matched)
                if nr.max_needed > rank_e:
                    # Something below nr still needs an element ranked after
                    # e, so it may appear deeper on this S branch.
                    surviving.append(nr)
            if surviving:
                stack.append((cs, surviving))
    if stats is not None:
        stats.candidates += candidates
        stats.entries_touched += touched
