"""Global element orders.

Several structures in the paper depend on a *global order* of elements:

* the prefix tree on ``R`` inserts each set's elements sorted in the global
  order (§IV-A), and the paper's implementation uses **decreasing frequency**
  so that frequent elements cluster near the root and more computation is
  shared;
* the partitioner (§V-A) splits ``R`` by each set's *smallest* element in the
  global order, i.e. its most frequent element under the default order;
* TT-Join's signature is the ``k`` **least** frequent elements of a set,
  which is simply the suffix of the set under the same order.

A :class:`GlobalOrder` is a permutation of element ids exposed as a ``rank``
array: ``rank[e]`` is the position of element ``e``, smaller means earlier.
Frequencies are always counted on the **indexed side** ``S`` (frequencies in
``R`` say nothing about inverted-list lengths).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

from ..data.collection import SetCollection
from ..errors import InvalidParameterError

__all__ = ["GlobalOrder", "build_order", "ORDER_KINDS"]

ORDER_KINDS = ("freq_desc", "freq_asc", "element_id")


class GlobalOrder:
    """A total order over element ids ``0 .. universe-1``.

    ``rank[e]`` gives the sort key of element ``e``; ties in the underlying
    criterion are broken by element id, so the order is deterministic.
    """

    __slots__ = ("rank", "kind", "frequency")

    def __init__(self, rank: Sequence[int], kind: str, frequency: Optional[Counter] = None):
        self.rank: List[int] = list(rank)
        self.kind = kind
        self.frequency: Counter = frequency if frequency is not None else Counter()

    def __len__(self) -> int:
        return len(self.rank)

    def extend_to(self, universe: int) -> None:
        """Grow the rank array to cover element ids up to ``universe - 1``.

        Newly covered ids rank after every known element, in id order —
        the same placement :func:`build_order` gives unseen elements. Used
        by incremental indexes when an appended set introduces elements.
        """
        rank = self.rank
        while len(rank) < universe:
            rank.append(len(rank))

    def sort_record(self, record: Iterable[int]) -> List[int]:
        """Sort a record's elements into the global order."""
        rank = self.rank
        return sorted(record, key=rank.__getitem__)

    def smallest(self, record: Iterable[int]) -> int:
        """The record's smallest element in the global order (partition key)."""
        rank = self.rank
        return min(record, key=rank.__getitem__)

    def largest_suffix(self, record: Iterable[int], k: int) -> List[int]:
        """The ``k`` largest elements in the order — TT-Join's signature.

        Under ``freq_desc`` these are the ``k`` *least frequent* elements,
        returned sorted in the global order.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        srt = self.sort_record(record)
        return srt[-k:] if k < len(srt) else srt

    def freq(self, element: int) -> int:
        """Occurrence count of ``element`` on the indexed side."""
        return self.frequency.get(element, 0)


def build_order(
    s_collection: SetCollection,
    kind: str = "freq_desc",
    universe: Optional[int] = None,
) -> GlobalOrder:
    """Build a :class:`GlobalOrder` from the indexed collection ``S``.

    ``kind`` is one of:

    * ``"freq_desc"`` — decreasing frequency in ``S`` (the paper's choice);
    * ``"freq_asc"``  — increasing frequency (used for ablation; also what
      several prior systems, e.g. PRETTI variants, prefer);
    * ``"element_id"`` — ascending raw element id (the paper's running
      example uses subscript order).

    ``universe`` forces the rank array length when ``R`` contains element ids
    that never occur in ``S`` — those get ranks after every ``S`` element,
    ordered by id.
    """
    if kind not in ORDER_KINDS:
        raise InvalidParameterError(
            f"unknown order kind {kind!r}; expected one of {ORDER_KINDS}"
        )
    freq = s_collection.element_frequencies()
    size = max(s_collection.max_element() + 1, universe or 0)
    ids = list(range(size))
    if kind == "freq_desc":
        ids.sort(key=lambda e: (-freq.get(e, 0), e))
    elif kind == "freq_asc":
        # Elements absent from S sort first (frequency 0), matching "least
        # frequent"; ties by id.
        ids.sort(key=lambda e: (freq.get(e, 0), e))
    # "element_id": ids already ascending.
    rank = [0] * size
    for pos, e in enumerate(ids):
        rank[e] = pos
    return GlobalOrder(rank, kind, freq)
