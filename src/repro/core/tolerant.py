"""Error-tolerant set containment (the T-occurrence problem).

The paper's related work cites two generalisations of exact containment:
error-tolerant containment joins (Agrawal, Arasu & Kaushik, SIGMOD'10
— ref [1]) and the T-occurrence algorithms of Li, Lu & Lu (ICDE'08 —
ref [12]). Both reduce to the same primitive: find the ``S`` sets
containing **at least T** of a query's elements. Exact containment is the
special case ``T = |R|``; "containment with up to k missing elements" is
``T = |R| - k``.

Two classic algorithms are implemented, both operating on the same
inverted index as everything else:

* :func:`scan_count` — one counter per ``S`` id, bumped for every posting
  of every query element; linear in the total list length, unbeatable for
  high-frequency queries on small universes;
* :func:`merge_skip` — the heap-based MergeSkip of Li et al.: ids are
  merged across the lists and, whenever the current id cannot reach ``T``
  occurrences, the ``T-1`` smallest heap heads are *popped and jumped*
  past it — list skipping again, the same spirit as cross-cutting.

:func:`tolerant_containment_join` lifts either primitive to a join.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from ..index.inverted import InvertedIndex
from .stats import JoinStats

__all__ = ["scan_count", "merge_skip", "tolerant_containment_join"]


def scan_count(
    index: InvertedIndex, elements: Sequence[int], threshold: int
) -> List[int]:
    """Ids occurring in at least ``threshold`` of the elements' lists.

    Duplicate query elements are collapsed first (an element can only
    testify once).
    """
    if threshold < 1:
        raise InvalidParameterError(f"threshold must be >= 1, got {threshold}")
    counts: Dict[int, int] = {}
    for e in set(elements):
        for sid in index[e]:
            counts[sid] = counts.get(sid, 0) + 1
    return sorted(sid for sid, c in counts.items() if c >= threshold)


def merge_skip(
    index: InvertedIndex,
    elements: Sequence[int],
    threshold: int,
    stats: Optional[JoinStats] = None,
) -> List[int]:
    """MergeSkip (Li, Lu & Lu, ICDE'08): heap merge with T-1 jumps.

    Maintains a min-heap of (current id, list, cursor). When the smallest
    id is held by ``c`` lists:

    * ``c >= threshold`` → it's a result; advance those lists by one;
    * otherwise the id cannot win — and neither can anything smaller than
      the heap's ``threshold``-th distinct head; pop ``threshold - 1``
      entries and binary-search each list forward to the new head,
      skipping every posting in between.
    """
    if threshold < 1:
        raise InvalidParameterError(f"threshold must be >= 1, got {threshold}")
    lists = [index[e] for e in set(elements)]
    lists = [lst for lst in lists if len(lst)]
    if len(lists) < threshold:
        return []
    searches = 0
    # Heap entries: [current id, list index]; cursors held separately.
    cursors = [0] * len(lists)
    heap: List[List[int]] = [[lst[0], i] for i, lst in enumerate(lists)]
    heapify(heap)
    out: List[int] = []
    while len(heap) >= threshold:
        smallest = heap[0][0]
        # Count how many lists sit on this id.
        holders: List[List[int]] = []
        while heap and heap[0][0] == smallest:
            holders.append(heappop(heap))
        if len(holders) >= threshold:
            out.append(smallest)
            for entry in holders:
                i = entry[1]
                cursors[i] += 1
                lst = lists[i]
                if cursors[i] < len(lst):
                    entry[0] = lst[cursors[i]]
                    heappush(heap, entry)
        else:
            # Not enough holders: jump. Pop until threshold-1 entries are
            # out of the heap in total, then everything below the new head
            # can be skipped in one binary search per popped list.
            while heap and len(holders) < threshold - 1:
                holders.append(heappop(heap))
            if not heap:
                break
            target = heap[0][0]
            for entry in holders:
                i = entry[1]
                lst = lists[i]
                pos = bisect_left(lst, target, cursors[i])
                searches += 1
                cursors[i] = pos
                if pos < len(lst):
                    entry[0] = lst[pos]
                    heappush(heap, entry)
    if stats is not None:
        stats.binary_searches += searches
    return out


def tolerant_containment_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    missing: int = 0,
    algorithm: str = "merge_skip",
    index: Optional[InvertedIndex] = None,
    stats: Optional[JoinStats] = None,
) -> List[Tuple[int, int]]:
    """All pairs with ``|R \\ S| <= missing`` (exact join at ``missing=0``).

    Sets smaller than ``missing`` match everything with any overlap
    requirement below 1; they are matched against the whole of ``S``
    (threshold clamps at 1 — at least one shared element is required, the
    T-occurrence convention).
    """
    if missing < 0:
        raise InvalidParameterError(f"missing must be >= 0, got {missing}")
    if algorithm not in ("merge_skip", "scan_count"):
        raise InvalidParameterError(
            f"algorithm must be merge_skip or scan_count, got {algorithm!r}"
        )
    if index is None:
        index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    out: List[Tuple[int, int]] = []
    for rid, record in enumerate(r_collection):
        threshold = max(len(record) - missing, 1)
        sids = (
            scan_count(index, record, threshold)
            if algorithm == "scan_count"
            else merge_skip(index, record, threshold, stats=stats)
        )
        for sid in sids:
            out.append((rid, sid))
    if stats is not None:
        stats.results += len(out)
    return out
