"""The paper's contribution: cross-cutting joins, tree sharing, partitioning."""

from .analytics import (
    containment_counts,
    containment_ratio,
    top_contained,
    top_containers,
)
from .api import JOIN_METHODS, join_methods, set_containment_join
from .blocked import blocked_join, iter_blocks
from .containment_index import ContainmentIndex
from .estimate import JoinEstimate, estimate_costs, estimate_result_size
from .planner import PlanDecision, choose_method
from .selfcheck import SelfCheckReport, self_check
from .framework import framework_join
from .hierarchy import ContainmentHierarchy, HierarchyNode, build_hierarchy
from .tolerant import merge_skip, scan_count, tolerant_containment_join
from .order import GlobalOrder, build_order
from .parallel import parallel_join, split_collection
from .partition import all_partition_join, lcjoin
from .results import (
    AttemptRecord,
    CallbackSink,
    ChunkReport,
    CountSink,
    JoinReport,
    PairListSink,
    make_sink,
)
from .supervisor import Supervisor
from .stats import JoinStats
from .tree_join import tree_join
from .verify import check_join_result, ground_truth

__all__ = [
    "set_containment_join",
    "ContainmentIndex",
    "join_methods",
    "JOIN_METHODS",
    "framework_join",
    "tree_join",
    "all_partition_join",
    "lcjoin",
    "parallel_join",
    "split_collection",
    "Supervisor",
    "JoinReport",
    "ChunkReport",
    "AttemptRecord",
    "blocked_join",
    "iter_blocks",
    "GlobalOrder",
    "build_order",
    "JoinStats",
    "PairListSink",
    "CountSink",
    "CallbackSink",
    "make_sink",
    "check_join_result",
    "ground_truth",
    "estimate_result_size",
    "estimate_costs",
    "JoinEstimate",
    "choose_method",
    "PlanDecision",
    "self_check",
    "SelfCheckReport",
    "build_hierarchy",
    "ContainmentHierarchy",
    "HierarchyNode",
    "tolerant_containment_join",
    "merge_skip",
    "scan_count",
    "containment_counts",
    "containment_ratio",
    "top_contained",
    "top_containers",
]
