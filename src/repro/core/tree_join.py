"""Tree-based cross-cutting join (paper §IV, Algorithms 2–4).

The prefix tree on ``R`` shares cross-cutting work between sets with common
prefixes. Every node ``n`` carries:

* ``n.max_sid``  — the smallest pending candidate among the leaves below
  ``n`` (the paper's ``n.MaxSid``);
* ``n.next_max`` — the *gap* of ``n``: the first entry in ``n``'s inverted
  list(s) greater than the last probed candidate (``n.NextMax``);
* ``n.rid_list`` — the leaves whose candidate equals ``n.max_sid`` **and**
  whose whole path down from ``n`` contains it (``n.RidList``).

Each call to the postorder traversal advances the root's candidate to the
next id that can possibly be a superset of *some* leaf, and
``root.rid_list`` then holds exactly the sets it provably contains
(correctness and soundness argument in §IV-B).

Implementation notes — where we deviate from the pseudo-code and why:

* **Strict re-traversal condition.** Algorithm 3 descends into children with
  ``c.MaxSid <= NextMax``. With ``<=`` a child whose *pending* candidate
  equals the accumulated gap would be advanced past a hit that was never
  emitted, losing results (a gap only rules out ids *strictly* between a
  node's candidate and its next list entry, so the equality case is not
  covered by the paper's skipping argument). We use the strict form
  ``c.max_sid < NextMax`` and initialise every ``max_sid`` to a ``BOTTOM``
  value below the first id so the first round still reaches every leaf.
  Round-to-round progress is preserved because the root's own gap strictly
  exceeds its previous candidate.
* **Per-node child heaps.** Algorithm 3 computes ``min_c c.MaxSid`` and the
  eligible-child set by scanning all children; at Python speed that linear
  scan (per node, per round) dominates everything else. Each node instead
  keeps its children in a min-heap keyed by their ``max_sid``, so a round
  touches exactly the children it advances plus O(log degree) heap work —
  the probe sequence (and thus the algorithm) is unchanged, only the
  bookkeeping cost drops.
* **Dead subtrees.** When a node's list is exhausted (the probe falls off
  the end), no leaf below it can ever match again — every leaf path goes
  through this node. The node saturates to ``max_sid = S_∞`` immediately
  instead of letting the sentinel percolate over further rounds. (Without
  this, the ``S_∞ == S_∞`` "hit" at the sentinel would also fabricate
  results.)
* **Iterative traversal.** The recursion depth equals the longest set in
  ``R``; real datasets (TWITTER: sets up to 5000 elements) overflow
  Python's stack, so the postorder runs on an explicit frame stack.
* **End-marker leaves** probe the index universe, so a leaf probe always
  hits and duplicate/prefix sets need no special cases (see
  :mod:`repro.index.prefix_tree`).
* **Early termination (Algorithm 4)** re-runs the traversal *of the same
  node* while its candidate misses its own list, so a miss never climbs to
  the parent; with the frame stack this is a frame reset rather than a
  recursive call.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush
from typing import List, Optional, Tuple

from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree, TreeNode
from ..obs import registry as _obs
from ..obs.spans import trace_span
from .order import GlobalOrder, build_order
from .stats import JoinStats

__all__ = ["tree_join", "run_tree_join", "bind_tree", "postorder_traverse"]

_EMPTY: Tuple[int, ...] = ()
_BOTTOM = -1


def bind_tree(tree: PrefixTree, index: InvertedIndex, subtree: Optional[TreeNode] = None) -> int:
    """Attach inverted lists to the tree and reset all join-time state.

    Returns the first candidate id (the paper's ``S_1``) for convenience.
    Binding is per-run because the partitioned methods re-run subtrees
    against different local indexes (§V).
    """
    universe = index.universe
    first_sid = universe[0] if len(universe) else index.inf_sid
    root = subtree if subtree is not None else tree.root
    stack = [root]
    lists = index.lists
    while stack:
        node = stack.pop()
        elements = node.elements
        if elements:
            node.inv = lists.get(elements[0], _EMPTY)
            if len(elements) > 1:
                # Merged Patricia node: extra lists beyond the first.
                node.more_invs = [lists.get(e, _EMPTY) for e in elements[1:]]
                node.more_curs = [0] * (len(elements) - 1)
            else:
                node.more_invs = None
        else:
            # Root and end-marker leaves match every id the index covers.
            node.inv = universe
            node.more_invs = None
        node.cur = 0
        node.max_sid = _BOTTOM
        node.next_max = first_sid
        node.rid_list = _EMPTY
        children = node.children
        if len(children) == 1:
            # Chain nodes bypass the heap entirely (the common trie case).
            node.only_child = children[0]
        else:
            node.only_child = None
            # Children keyed by their candidate; id() breaks ties (nodes do
            # not compare). Every child starts at BOTTOM so round one
            # reaches all of them.
            node.heap = [(_BOTTOM, id(c), c) for c in children]
            node.heap.sort()
        stack.extend(children)
    return first_sid


def _probe_node(node: TreeNode, candidate: int, inf_sid: int) -> Tuple[bool, int, int]:
    """Probe ``candidate`` in every list of a merged Patricia node.

    Returns ``(hit, gap, searches)``: ``hit`` iff the candidate appears in
    every list; ``gap`` is the next safe candidate this node can justify —
    the maximum over the visited lists of their first entry greater than
    ``candidate`` (``inf_sid`` once any list is exhausted). The probe stops
    at the first missing list (the natural within-node early termination).
    """
    best = -1
    searches = 1
    lst = node.inv
    pos = bisect_left(lst, candidate, node.cur)
    node.cur = pos
    if pos == len(lst):
        return False, inf_sid, searches
    sid = lst[pos]
    if sid != candidate:
        return False, sid, searches
    best = lst[pos + 1] if pos + 1 < len(lst) else inf_sid
    more_invs = node.more_invs
    more_curs = node.more_curs
    for i in range(len(more_invs)):
        lst = more_invs[i]
        pos = bisect_left(lst, candidate, more_curs[i])
        more_curs[i] = pos
        searches += 1
        if pos == len(lst):
            return False, inf_sid, searches
        sid = lst[pos]
        if sid != candidate:
            if sid > best:
                best = sid
            return False, best, searches
        gap = lst[pos + 1] if pos + 1 < len(lst) else inf_sid
        if gap > best:
            best = gap
    return True, best, searches


def postorder_traverse(
    root: TreeNode,
    next_max: int,
    inf_sid: int,
    early_termination: bool,
    stats: Optional[JoinStats] = None,
) -> None:
    """One postorder traversal (Algorithm 3), iteratively.

    Updates ``max_sid``, ``next_max`` and ``rid_list`` of every node whose
    candidate the accumulated gap allows to advance; afterwards
    ``root.max_sid`` is the next candidate to check (``S_∞`` when done) and
    ``root.rid_list`` holds the sets it contains.
    """
    searches = 0
    # Frame: [node, accumulated NextMax, child handed down (to re-heap on
    # return)]. The child is pushed back with its updated key when control
    # returns to the parent frame.
    stack: List[List] = [[root, max(next_max, root.next_max), None]]
    while stack:
        frame = stack[-1]
        node: TreeNode = frame[0]
        nm: int = frame[1]
        oc = node.only_child
        if oc is not None:
            # Chain node: no heap bookkeeping. After a child subtree is
            # processed with accumulated gap nm, its max_sid is >= nm (a
            # leaf jumps to nm, an inner node takes a min over children
            # that all did), so this check cannot loop.
            if oc.max_sid < nm:
                cnm = oc.next_max
                stack.append([oc, cnm if cnm > nm else nm, None])
                continue
            heap = None
            candidate = oc.max_sid
        else:
            heap = node.heap
            returned = frame[2]
            if returned is not None:
                heappush(heap, (returned.max_sid, id(returned), returned))
                frame[2] = None
            if heap and heap[0][0] < nm:
                child = heappop(heap)[2]
                frame[2] = child
                cnm = child.next_max
                stack.append([child, cnm if cnm > nm else nm, None])
                continue
            # All eligible children are up to date: finalize this node.
            candidate = heap[0][0] if heap else nm
        node.max_sid = candidate
        if candidate >= inf_sid:
            node.next_max = inf_sid
            node.rid_list = _EMPTY
            stack.pop()
            continue
        if not node.elements:
            # Root or end-marker: the "list" is the index universe, which
            # contains every candidate by construction — a guaranteed hit
            # whose gap is simply the next universe id. No search needed
            # (and none is counted: the paper's cost model only counts
            # probes into the inverted lists of R's elements).
            universe = node.inv
            if type(universe) is range:
                gap = candidate + 1
            else:
                pos = bisect_left(universe, candidate, node.cur) + 1
                node.cur = pos
                gap = universe[pos] if pos < len(universe) else inf_sid
            hit = True
        elif node.more_invs is None:
            # Ordinary prefix-tree node: one inverted list, probed inline.
            lst = node.inv
            pos = bisect_left(lst, candidate, node.cur)
            node.cur = pos
            searches += 1
            if pos == len(lst):
                hit = False
                gap = inf_sid
            else:
                sid = lst[pos]
                if sid == candidate:
                    hit = True
                    gap = lst[pos + 1] if pos + 1 < len(lst) else inf_sid
                else:
                    hit = False
                    gap = sid
        else:
            # Patricia node: several lists, probed by the shared helper.
            hit, gap, n_searches = _probe_node(node, candidate, inf_sid)
            searches += n_searches
        if hit:
            node.next_max = gap
            if node.terminal_rids is not None:
                node.rid_list = node.terminal_rids
            elif oc is not None:
                # Single child at exactly the candidate: share its list.
                node.rid_list = oc.rid_list
            elif heap:
                # Union the rid lists of the children sitting exactly at the
                # candidate (Algorithm 3 line 15); only they are popped.
                first = heappop(heap)
                if heap and heap[0][0] == candidate:
                    rids = list(first[2].rid_list)
                    popped = [first]
                    while heap and heap[0][0] == candidate:
                        entry = heappop(heap)
                        popped.append(entry)
                        child_rids = entry[2].rid_list
                        if child_rids:
                            rids.extend(child_rids)
                    for entry in popped:
                        heappush(heap, entry)
                    node.rid_list = rids
                else:
                    # Only one child holds the candidate: share its list.
                    heappush(heap, first)
                    node.rid_list = first[2].rid_list
            else:
                node.rid_list = _EMPTY
            stack.pop()
        elif gap >= inf_sid:
            # The node's list is exhausted: no leaf below can match again.
            node.max_sid = inf_sid
            node.next_max = inf_sid
            node.rid_list = _EMPTY
            stack.pop()
        else:
            node.next_max = gap
            node.rid_list = _EMPTY
            if early_termination:
                # Algorithm 4: keep advancing this subtree until its
                # candidate is found in this node's own list, so the miss
                # never reaches the parent.
                frame[1] = max(nm, gap)
            else:
                stack.pop()
    if stats is not None:
        stats.binary_searches += searches
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("tree.searches", searches)


def run_tree_join(
    tree: PrefixTree,
    index: InvertedIndex,
    sink,
    early_termination: bool = False,
    subtree: Optional[TreeNode] = None,
    stats: Optional[JoinStats] = None,
) -> None:
    """Algorithm 2: repeated postorder traversals until ``S_∞`` is reached.

    ``subtree`` restricts the join to one partition branch (§V); binding
    against ``index`` happens here either way.
    """
    root = subtree if subtree is not None else tree.root
    first_sid = bind_tree(tree, index, subtree=root)
    inf_sid = index.inf_sid
    if first_sid >= inf_sid or not root.children:
        return
    rounds = 0
    with trace_span("tree.traverse"):
        while root.max_sid < inf_sid:
            rounds += 1
            postorder_traverse(root, first_sid, inf_sid, early_termination, stats)
            # int() keeps emitted sids plain Python ints even when the bound
            # lists are numpy views (CSR backend hands back numpy scalars).
            sid = int(root.max_sid)
            if sid < inf_sid and root.rid_list:
                sink.add_rids(root.rid_list, sid)
    if stats is not None:
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("tree.rounds", rounds)


def tree_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    early_termination: bool = False,
    order: Optional[GlobalOrder] = None,
    index=None,
    tree: Optional[PrefixTree] = None,
    patricia: bool = False,
    stats: Optional[JoinStats] = None,
    backend: str = "python",
) -> None:
    """The tree-based set containment join (paper's ``TreeBased`` /
    ``TreeBasedET`` methods).

    Builds the frequency global order, the inverted index on ``S`` and the
    prefix tree on ``R`` unless prebuilt ones are supplied, then runs
    Algorithm 2. ``patricia=True`` path-compresses the tree first (§IV-A).

    ``backend="csr"`` binds the tree against a
    :class:`~repro.index.storage.CSRInvertedIndex`: node lists become
    zero-copy numpy views over one contiguous postings array, which is what
    allows a parallel driver to share a single index across workers. The
    traversal itself is unchanged (it is inherently pointer-chasing; the
    vectorized wins live in the flat framework — see docs/internals.md).
    ``backend="hybrid"`` behaves identically here — the traversal probes
    through ``get_list`` views either way — but accepts and shares the
    hybrid index so one build can serve both tree and framework runs.
    """
    if index is None:
        with trace_span("index.build"):
            if backend in ("csr", "hybrid"):
                from ..index.storage import CSRInvertedIndex, HybridInvertedIndex

                cls = HybridInvertedIndex if backend == "hybrid" else CSRInvertedIndex
                index = cls.build(s_collection)
            else:
                index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    elif backend in ("csr", "hybrid") and isinstance(index, InvertedIndex):
        from ..index.storage import CSRInvertedIndex, HybridInvertedIndex

        cls = HybridInvertedIndex if backend == "hybrid" else CSRInvertedIndex
        with trace_span("index.csr_pack"):
            index = cls.from_index(index)
    if order is None:
        universe = max(r_collection.max_element(), s_collection.max_element()) + 1
        with trace_span("order.build"):
            order = build_order(s_collection, universe=universe)
    if tree is None:
        with trace_span("tree.build"):
            tree = PrefixTree.build(r_collection, order, compress=patricia)
    if stats is not None:
        stats.tree_nodes += tree.num_nodes
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("tree.nodes", tree.num_nodes)
    run_tree_join(tree, index, sink, early_termination=early_termination, stats=stats)
