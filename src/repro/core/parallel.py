"""Multiprocess set containment joins with a shared superset-side index.

The containment join is embarrassingly parallel on the subset side: for any
split ``R = R₁ ∪ R₂``, ``R ⋈⊆ S = (R₁ ⋈⊆ S) ∪ (R₂ ⋈⊆ S)``. This module
splits ``R``, joins each chunk against ``S`` in a worker process with any
registered method, and remaps the chunk-local rids back to the original ids.

All workers join against the *same* ``S``, so the expensive superset-side
structures are built **once in the parent** and distributed instead of being
rebuilt per worker:

* ``backend="csr"`` — the :class:`~repro.index.storage.CSRInvertedIndex`
  is exported to ``multiprocessing.shared_memory``; every worker attaches
  the same physical pages (zero-copy, constant cost per worker regardless
  of index size). When shared memory is unavailable the index rides along
  fork-inherited buffers, and as a last resort it is pickled into the jobs.
* ``backend="python"`` — the :class:`~repro.index.inverted.InvertedIndex`
  (and, for the tree/partition methods, the frequency
  :class:`~repro.core.order.GlobalOrder`) is built once and pickled into
  each job. Measured on the AOL surrogate at scale 0.002 (73k sets, 183k
  postings): one parent-side build 29 ms + 11 ms ``dumps``, then ~31 ms
  ``loads`` per worker — per-worker cost comparable to a rebuild in pure
  wall-clock, but the build work is paid once instead of ``workers``
  times, the ``order`` rebuild (a full frequency count) *is* eliminated
  per worker, and the pickle blob (0.6 MB here) ships over the same pipe
  the job already uses. The CSR path above removes even that copy.

Chunking defaults to ``strategy="round_robin"``: record ``i`` goes to chunk
``i % chunks``. Contiguous equal-size chunks (``strategy="contiguous"``)
skew badly when record sizes are correlated with position — common after
frequency reordering or sorted data loads — leaving one worker with all the
big sets; round-robin dealing keeps per-chunk work balanced for any sorted
input while preserving exact rid remapping.

Since the chunks are independently re-executable, worker failures are
recoverable: dispatch runs through :class:`~repro.core.supervisor
.Supervisor`, which detects crashed and hung workers, retries chunks with
capped exponential backoff (``retries=``, ``task_timeout=``, ``backoff=``),
downgrades the payload path when shared memory misbehaves, and — after
exhausting retries — falls back to in-process execution on the python
backend. ``return_report=True`` returns the structured
:class:`~repro.core.results.JoinReport` of all that alongside the pairs;
see the "Failure model" section of ``docs/internals.md``.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from ..faults import FaultPlan
from ..index.inverted import InvertedIndex
from ..index.storage import CSRInvertedIndex, SharedCSRHandle
from .api import BACKEND_METHODS, BACKENDS, set_containment_join
from .order import build_order
from .results import AttemptRecord, ChunkReport, JoinReport
from .supervisor import Supervisor

__all__ = ["parallel_join", "split_collection"]

#: How the superset-side index ships to a worker: tagged payload resolved
#: by :func:`_resolve_index` — ("direct"|"pickle", index), ("shm", handle),
#: or ("fork", token).
_IndexPayload = Tuple[str, Any]

#: Methods that accept a prebuilt global ``index=`` (superset side).
_INDEX_METHODS = frozenset(
    {"framework", "framework_et", "tree", "tree_et", "all_partition", "lcjoin"}
)
#: Methods that accept a prebuilt global ``order=`` as well.
_ORDER_METHODS = frozenset({"tree", "tree_et", "all_partition", "lcjoin"})

#: Fork-inherited payloads: populated in the parent immediately before the
#: workers fork, read by workers through copy-on-write memory, and dropped
#: in the parent's ``finally``. Keyed by id so nested/concurrent joins
#: cannot collide.
_FORK_SHARED: Dict[int, CSRInvertedIndex] = {}


def split_collection(
    collection: SetCollection,
    chunks: int,
    strategy: str = "contiguous",
) -> List[Tuple[Union[int, List[int]], SetCollection]]:
    """Split into up to ``chunks`` pieces together with their rid mapping.

    ``strategy="contiguous"`` yields equal-size runs and an ``int`` rid
    offset per piece. ``strategy="round_robin"`` deals record ``i`` to
    piece ``i % chunks`` and yields the explicit global-rid list per piece;
    it balances per-chunk work when record sizes are sorted (e.g. after a
    frequency reorder), where contiguous runs would put all the large sets
    in one chunk.
    """
    if chunks < 1:
        raise InvalidParameterError(f"chunks must be >= 1, got {chunks}")
    n = len(collection)
    if n == 0:
        return []
    chunks = min(chunks, n)
    records = collection.records
    out: List[Tuple[Union[int, List[int]], SetCollection]] = []
    if strategy == "contiguous":
        size = (n + chunks - 1) // chunks
        for lo in range(0, n, size):
            piece = SetCollection(records[lo: lo + size], validate=False)
            out.append((lo, piece))
    elif strategy == "round_robin":
        for c in range(chunks):
            rids = list(range(c, n, chunks))
            piece = SetCollection(
                (records[i] for i in rids), validate=False
            )
            out.append((rids, piece))
    else:
        raise InvalidParameterError(
            f"unknown split strategy {strategy!r}; "
            "expected 'contiguous' or 'round_robin'"
        )
    return out


def _resolve_index(
    payload: Optional[_IndexPayload],
) -> Optional[Union[InvertedIndex, CSRInvertedIndex]]:
    """Turn a shipped index payload back into a probe-ready index."""
    if payload is None:
        return None
    kind, value = payload
    if kind == "direct" or kind == "pickle":
        return value
    if kind == "shm":
        return CSRInvertedIndex.from_shared_memory(value)
    if kind == "fork":
        return _FORK_SHARED[value]
    raise InvalidParameterError(f"unknown index payload {kind!r}")


def _join_chunk(args: Tuple[Any, ...]) -> List[Tuple[int, int]]:
    rid_map, r_chunk, s_collection, method, backend, payload, extra, kwargs = args
    kw = dict(kwargs)
    kw.update(extra)
    index = _resolve_index(payload)
    # Segments attached from shared memory must be detached even when the
    # join raises: an exception that leaves the attachment open pins the
    # mapping (and, pre-3.13, keeps the resource tracker believing the
    # worker still uses it) for the rest of the worker's lifetime. The
    # creator's unlink in parallel_join's ``finally`` does not release
    # *this worker's* mapping — only close() does.
    attached = payload is not None and payload[0] == "shm"
    try:
        if index is not None:
            kw["index"] = index
        if backend != "python":
            kw["backend"] = backend
        pairs = set_containment_join(r_chunk, s_collection, method=method, **kw)
        if isinstance(rid_map, int):
            return [(rid_map + rid, sid) for rid, sid in pairs]
        return [(rid_map[rid], sid) for rid, sid in pairs]
    finally:
        if attached and isinstance(index, CSRInvertedIndex):
            index.close()


def parallel_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    method: str = "lcjoin",
    workers: Optional[int] = None,
    backend: str = "python",
    strategy: str = "round_robin",
    index: Optional[Union[InvertedIndex, CSRInvertedIndex]] = None,
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.05,
    backoff_cap: float = 2.0,
    fallback: bool = True,
    faults: Optional[FaultPlan] = None,
    return_report: bool = False,
    **kwargs: Any,
) -> Union[List[Tuple[int, int]], Tuple[List[Tuple[int, int]], JoinReport]]:
    """Join with ``workers`` processes (defaults to the CPU count).

    Returns the pair list (rids refer to ``r_collection``), or
    ``(pairs, report)`` with ``return_report=True``. With one worker (or
    one chunk) everything runs in-process, so tests and small inputs pay no
    fork cost.

    The superset-side index is built **once** here and shared with every
    worker — via shared memory for ``backend="csr"`` (zero-copy attach),
    via pickling for the Python backend (see the module docstring for the
    measured pickle-vs-rebuild costs). Pass a prebuilt ``index=`` to skip
    even the single parent-side build, e.g. when issuing many joins against
    the same ``S``. ``strategy`` selects the ``R`` chunking
    (:func:`split_collection`); round-robin is the default because it stays
    balanced on size-sorted inputs.

    Multi-process runs are supervised: each chunk is a tracked task with up
    to ``retries`` re-dispatches (exponential ``backoff`` capped at
    ``backoff_cap``) and an optional per-attempt ``task_timeout`` that
    catches hung workers. A chunk whose retries are exhausted falls back to
    in-process python-backend execution unless ``fallback=False``, in which
    case :class:`~repro.errors.WorkerFailedError` /
    :class:`~repro.errors.JoinTimeoutError` is raised. ``faults`` (or the
    ``REPRO_FAULTS`` environment variable) injects deterministic worker
    faults for testing — see :mod:`repro.faults`.
    """
    workers = workers if workers is not None else multiprocessing.cpu_count()
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend != "python" and method not in BACKEND_METHODS:
        raise InvalidParameterError(
            f"backend={backend!r} is only supported by "
            f"{sorted(BACKEND_METHODS)}; got method={method!r}"
        )
    if faults is None:
        faults = FaultPlan.from_env()
    chunks = split_collection(r_collection, workers, strategy=strategy)
    if not chunks:
        report = JoinReport(workers=workers)
        return ([], report) if return_report else []

    extra: Dict[str, Any] = {}
    if method in _ORDER_METHODS and "order" not in kwargs:
        universe = max(
            r_collection.max_element(), s_collection.max_element()
        ) + 1
        extra["order"] = build_order(s_collection, universe=universe)

    shared_index = index
    if backend == "csr":
        if shared_index is None:
            shared_index = CSRInvertedIndex.build(s_collection)
        elif isinstance(shared_index, InvertedIndex):
            shared_index = CSRInvertedIndex.from_index(shared_index)
    elif shared_index is None and method in _INDEX_METHODS:
        shared_index = InvertedIndex.build(s_collection)

    in_process = len(chunks) == 1 or workers == 1
    handle: Optional[SharedCSRHandle] = None
    fork_token: Optional[int] = None
    try:
        primary_mode = "none"
        payloads: Dict[str, Optional[_IndexPayload]] = {"none": None, "local": None}
        if shared_index is not None:
            payloads["pickle"] = ("pickle", shared_index)
            if in_process:
                primary_mode = "direct"
                payloads["direct"] = ("direct", shared_index)
            elif backend == "csr":
                assert isinstance(shared_index, CSRInvertedIndex)
                try:
                    handle = shared_index.to_shared_memory()
                    primary_mode = "shm"
                    payloads["shm"] = ("shm", handle)
                except OSError:
                    # No usable /dev/shm (containers with tiny or absent
                    # shm mounts). Fall back to fork-inherited copy-on-
                    # write pages, then to plain pickling.
                    if multiprocessing.get_start_method() == "fork":
                        fork_token = id(shared_index)
                        _FORK_SHARED[fork_token] = shared_index
                        primary_mode = "fork"
                        payloads["fork"] = ("fork", fork_token)
                    else:  # pragma: no cover - non-fork platforms only
                        primary_mode = "pickle"
            else:
                primary_mode = "pickle"

        def make_job(chunk_id: int, mode: str) -> Tuple[Any, ...]:
            rid_map, piece = chunks[chunk_id]
            if mode == "local":
                # Degradation terminus: in-process, pure-python backend,
                # method builds its own chunk-scoped structures. Slowest
                # path, fewest moving parts.
                return (rid_map, piece, s_collection, method, "python",
                        None, extra, kwargs)
            return (rid_map, piece, s_collection, method, backend,
                    payloads[mode], extra, kwargs)

        if in_process:
            results, report = _run_in_process(chunks, make_job, primary_mode)
        else:
            supervisor = Supervisor(
                num_chunks=len(chunks),
                make_job=make_job,
                runner=_join_chunk,
                primary_mode=primary_mode,
                workers=workers,
                retries=retries,
                task_timeout=task_timeout,
                backoff=backoff,
                backoff_cap=backoff_cap,
                fallback=fallback,
                plan=faults,
                chunk_sizes=[len(piece) for __, piece in chunks],
            )
            by_chunk = supervisor.run()
            results = [by_chunk[i] for i in range(len(chunks))]
            report = supervisor.report
    finally:
        if handle is not None:
            handle.cleanup()
        if fork_token is not None:
            _FORK_SHARED.pop(fork_token, None)
    out: List[Tuple[int, int]] = []
    for part in results:
        out.extend(part)
    return (out, report) if return_report else out


def _run_in_process(
    chunks: List[Tuple[Union[int, List[int]], SetCollection]],
    make_job: Any,
    primary_mode: str,
) -> Tuple[List[List[Tuple[int, int]]], JoinReport]:
    """The no-fork fast path, reported in the same shape as supervised runs."""
    report = JoinReport(workers=1)
    results = []
    start = time.perf_counter()
    for chunk_id, (__, piece) in enumerate(chunks):
        t0 = time.perf_counter()
        results.append(_join_chunk(make_job(chunk_id, primary_mode)))
        report.chunks.append(
            ChunkReport(
                chunk=chunk_id,
                size=len(piece),
                attempts=[
                    AttemptRecord(
                        number=1,
                        mode=primary_mode,
                        outcome="ok",
                        duration=time.perf_counter() - t0,
                    )
                ],
            )
        )
    report.elapsed_seconds = time.perf_counter() - start
    return results, report
