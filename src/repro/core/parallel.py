"""Multiprocess set containment joins.

The containment join is embarrassingly parallel on the subset side: for any
split ``R = R₁ ∪ R₂``, ``R ⋈⊆ S = (R₁ ⋈⊆ S) ∪ (R₂ ⋈⊆ S)``. This module
splits ``R`` into contiguous chunks, joins each chunk against ``S`` in a
worker process with any registered method, and remaps the chunk-local rids
back to the original ids.

This is the direction the related work's PIEJoin paper ("towards parallel
set containment joins", §VII) pushes; here it composes with *every* method
in the registry, LCJoin included. Each worker rebuilds the index/tree for
its chunk — cheap relative to the join itself at the data sizes where
parallelism pays off at all. For small inputs just call
:func:`~repro.core.api.set_containment_join`.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Tuple

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from .api import set_containment_join

__all__ = ["parallel_join", "split_collection"]


def split_collection(collection: SetCollection, chunks: int) -> List[Tuple[int, SetCollection]]:
    """Split into up to ``chunks`` contiguous pieces with their rid offsets."""
    if chunks < 1:
        raise InvalidParameterError(f"chunks must be >= 1, got {chunks}")
    n = len(collection)
    if n == 0:
        return []
    chunks = min(chunks, n)
    size = (n + chunks - 1) // chunks
    out = []
    records = collection.records
    for lo in range(0, n, size):
        piece = SetCollection(records[lo: lo + size], validate=False)
        out.append((lo, piece))
    return out


def _join_chunk(args) -> List[Tuple[int, int]]:
    offset, r_chunk, s_collection, method, kwargs = args
    pairs = set_containment_join(r_chunk, s_collection, method=method, **kwargs)
    return [(offset + rid, sid) for rid, sid in pairs]


def parallel_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    method: str = "lcjoin",
    workers: Optional[int] = None,
    **kwargs,
) -> List[Tuple[int, int]]:
    """Join with ``workers`` processes (defaults to the CPU count).

    Returns the pair list (rids refer to ``r_collection``). With one worker
    (or one chunk) everything runs in-process, so tests and small inputs
    pay no fork cost.
    """
    workers = workers if workers is not None else multiprocessing.cpu_count()
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    chunks = split_collection(r_collection, workers)
    if not chunks:
        return []
    jobs = [(lo, piece, s_collection, method, kwargs) for lo, piece in chunks]
    if len(jobs) == 1 or workers == 1:
        results = [_join_chunk(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=len(jobs)) as pool:
            results = pool.map(_join_chunk, jobs)
    out: List[Tuple[int, int]] = []
    for part in results:
        out.extend(part)
    return out
