"""Multiprocess set containment joins with a shared superset-side index.

The containment join is embarrassingly parallel on the subset side: for any
split ``R = R₁ ∪ R₂``, ``R ⋈⊆ S = (R₁ ⋈⊆ S) ∪ (R₂ ⋈⊆ S)``. This module
splits ``R``, joins each chunk against ``S`` in a worker process with any
registered method, and remaps the chunk-local rids back to the original ids.

All workers join against the *same* ``S``, so the expensive superset-side
structures are built **once in the parent** and distributed instead of being
rebuilt per worker:

* ``backend="csr"`` / ``backend="hybrid"`` — the array index
  (:class:`~repro.index.storage.CSRInvertedIndex` or its bitmap-carrying
  :class:`~repro.index.storage.HybridInvertedIndex` subclass) is exported
  to ``multiprocessing.shared_memory``; every worker attaches the same
  physical pages (zero-copy, constant cost per worker regardless of index
  size). When shared memory is unavailable the index rides along
  fork-inherited buffers, and as a last resort it is pickled into the
  jobs. The partitioned methods build *local* indexes per partition, so
  they ship the python index whatever the backend and repack in-worker.
* ``backend="python"`` — the :class:`~repro.index.inverted.InvertedIndex`
  (and, for the tree/partition methods, the frequency
  :class:`~repro.core.order.GlobalOrder`) is built once and pickled into
  each job. Measured on the AOL surrogate at scale 0.002 (73k sets, 183k
  postings): one parent-side build 29 ms + 11 ms ``dumps``, then ~31 ms
  ``loads`` per worker — per-worker cost comparable to a rebuild in pure
  wall-clock, but the build work is paid once instead of ``workers``
  times, the ``order`` rebuild (a full frequency count) *is* eliminated
  per worker, and the pickle blob (0.6 MB here) ships over the same pipe
  the job already uses. The CSR path above removes even that copy.

Chunking defaults to ``strategy="round_robin"``: record ``i`` goes to chunk
``i % chunks``. Contiguous equal-size chunks (``strategy="contiguous"``)
skew badly when record sizes are correlated with position — common after
frequency reordering or sorted data loads — leaving one worker with all the
big sets; round-robin dealing keeps per-chunk work balanced for any sorted
input while preserving exact rid remapping.

Since the chunks are independently re-executable, worker failures are
recoverable: dispatch runs through :class:`~repro.core.supervisor
.Supervisor`, which detects crashed and hung workers, retries chunks with
capped exponential backoff (``retries=``, ``task_timeout=``, ``backoff=``),
downgrades the payload path when shared memory misbehaves, and — after
exhausting retries — falls back to in-process execution on the python
backend. ``return_report=True`` returns the structured
:class:`~repro.core.results.JoinReport` of all that alongside the pairs;
see the "Failure model" section of ``docs/internals.md``.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import time
import uuid
import warnings
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .shard import ShardPolicy

from ..data.collection import SetCollection
from ..errors import (
    DeadlineExceededError,
    DegradedExecutionWarning,
    InvalidParameterError,
    JoinCancelledError,
)
from ..faults import FaultPlan
from ..index.inverted import InvertedIndex
from ..index.storage import CSRInvertedIndex, HybridInvertedIndex, SharedCSRHandle
from ..memory.meter import collection_footprint
from ..obs.registry import active_or_null
from ..obs.spans import trace_span
from .api import BACKEND_METHODS, BACKENDS, set_containment_join
from .order import build_order
from .results import AttemptRecord, ChunkReport, JoinReport
from .runlog import (
    CancelToken,
    RunLog,
    RunManifest,
    collection_fingerprint,
    deadline_at,
    signal_cancellation,
)
from .supervisor import Supervisor

__all__ = ["parallel_join", "split_collection", "build_method_index"]

#: How the superset-side index ships to a worker: tagged payload resolved
#: by :func:`_resolve_index` — ("direct"|"pickle", index), ("shm", handle),
#: or ("fork", token).
_IndexPayload = Tuple[str, Any]

#: Methods that accept a prebuilt global ``index=`` (superset side).
_INDEX_METHODS = frozenset(
    {"framework", "framework_et", "tree", "tree_et", "all_partition", "lcjoin"}
)
#: The subset of those that probe the global index directly and therefore
#: consume an array (CSR/hybrid) ``index=`` as-is. The partitioned methods
#: need the python index API (anchor lists, ``build_local``) and repack
#: per partition, so they always ship the python index.
_ARRAY_INDEX_METHODS = frozenset({"framework", "framework_et", "tree", "tree_et"})
#: Methods that accept a prebuilt global ``order=`` as well.
_ORDER_METHODS = frozenset({"tree", "tree_et", "all_partition", "lcjoin"})

#: Fork-inherited payloads: populated in the parent immediately before the
#: workers fork, read by workers through copy-on-write memory, and dropped
#: in the parent's ``finally``. Keyed by id so nested/concurrent joins
#: cannot collide.
_FORK_SHARED: Dict[int, CSRInvertedIndex] = {}


def split_collection(
    collection: SetCollection,
    chunks: int,
    strategy: str = "contiguous",
) -> List[Tuple[Union[int, List[int]], SetCollection]]:
    """Split into up to ``chunks`` pieces together with their rid mapping.

    ``strategy="contiguous"`` yields equal-size runs and an ``int`` rid
    offset per piece. ``strategy="round_robin"`` deals record ``i`` to
    piece ``i % chunks`` and yields the explicit global-rid list per piece;
    it balances per-chunk work when record sizes are sorted (e.g. after a
    frequency reorder), where contiguous runs would put all the large sets
    in one chunk.
    """
    if chunks < 1:
        raise InvalidParameterError(f"chunks must be >= 1, got {chunks}")
    n = len(collection)
    if n == 0:
        return []
    chunks = min(chunks, n)
    records = collection.records
    out: List[Tuple[Union[int, List[int]], SetCollection]] = []
    if strategy == "contiguous":
        size = (n + chunks - 1) // chunks
        for lo in range(0, n, size):
            piece = SetCollection(records[lo: lo + size], validate=False)
            out.append((lo, piece))
    elif strategy == "round_robin":
        for c in range(chunks):
            rids = list(range(c, n, chunks))
            piece = SetCollection(
                (records[i] for i in rids), validate=False
            )
            out.append((rids, piece))
    else:
        raise InvalidParameterError(
            f"unknown split strategy {strategy!r}; "
            "expected 'contiguous' or 'round_robin'"
        )
    return out


def build_method_index(
    s_collection: SetCollection,
    method: str,
    backend: str,
    index: Optional[Union[InvertedIndex, CSRInvertedIndex]] = None,
) -> Optional[Union[InvertedIndex, CSRInvertedIndex]]:
    """The superset-side index this ``(method, backend)`` pair consumes.

    One decision point shared by the driver (which builds once and ships
    the result to every worker) and by shard nodes (which build their own
    copy in-process — sharded runs share no memory across nodes). The
    array-probing methods take the CSR/hybrid index directly; the
    partitioned methods need the python index API (anchor lists,
    ``build_local``) whatever the backend and repack per partition; the
    baselines build their own structures and take no index at all. A
    caller-provided ``index`` is converted when the backend needs the
    array form, and passed through otherwise.
    """
    if backend != "python" and method in _ARRAY_INDEX_METHODS:
        cls = HybridInvertedIndex if backend == "hybrid" else CSRInvertedIndex
        if index is None:
            return cls.build(s_collection)
        if isinstance(index, InvertedIndex):
            return cls.from_index(index)
        return index
    if index is None and method in _INDEX_METHODS:
        return InvertedIndex.build(s_collection)
    return index


def _resolve_index(
    payload: Optional[_IndexPayload],
) -> Optional[Union[InvertedIndex, CSRInvertedIndex]]:
    """Turn a shipped index payload back into a probe-ready index."""
    if payload is None:
        return None
    kind, value = payload
    if kind == "direct" or kind == "pickle":
        return value
    if kind == "shm":
        # Dispatch on the handle's kind tag through the class methods (not
        # attach_shared_index) so tests can monkeypatch attachment per class.
        if getattr(value, "kind", "csr") == "hybrid":
            return HybridInvertedIndex.from_shared_memory(value)
        return CSRInvertedIndex.from_shared_memory(value)
    if kind == "fork":
        return _FORK_SHARED[value]
    raise InvalidParameterError(f"unknown index payload {kind!r}")


def _join_chunk(args: Tuple[Any, ...]) -> List[Tuple[int, int]]:
    rid_map, r_chunk, s_collection, method, backend, payload, extra, kwargs = args
    kw = dict(kwargs)
    kw.update(extra)
    index = _resolve_index(payload)
    # Segments attached from shared memory must be detached even when the
    # join raises: an exception that leaves the attachment open pins the
    # mapping (and, pre-3.13, keeps the resource tracker believing the
    # worker still uses it) for the rest of the worker's lifetime. The
    # creator's unlink in parallel_join's ``finally`` does not release
    # *this worker's* mapping — only close() does.
    attached = payload is not None and payload[0] == "shm"
    try:
        if index is not None:
            kw["index"] = index
        if backend != "python":
            kw["backend"] = backend
        pairs = set_containment_join(r_chunk, s_collection, method=method, **kw)
        if isinstance(rid_map, int):
            return [(rid_map + rid, sid) for rid, sid in pairs]
        return [(rid_map[rid], sid) for rid, sid in pairs]
    finally:
        if attached and isinstance(index, CSRInvertedIndex):
            index.close()


# -- memory-budget admission control ---------------------------------------
#
# Analytic bytes-per-entry figures for the admission model, derived from the
# structures' actual layouts: a pure-python posting/record entry is a boxed
# int in a tuple slot (28-byte small int + 8-byte pointer, amortised over
# CPython's allocation rounding ≈ 96 bytes with the per-list overheads
# folded in); a CSR entry is one int32 value + one int64 composite key plus
# the amortised offsets row. These deliberately over-estimate — admission
# control exists to avoid the OOM killer, and the meter's analytic
# footprints (entries, not bytes) stay the ground truth for *relative*
# comparisons.
_PY_BYTES_PER_ENTRY = 96
_CSR_BYTES_PER_ENTRY = 24
#: Fixed per-chunk overhead (job tuple, pipe buffers, interpreter slack).
_CHUNK_FIXED_BYTES = 1 << 16


def _admit_memory(
    budget: int,
    r_entries: int,
    s_entries: int,
    workers: int,
    num_chunks: int,
    max_chunks: int,
    backend: str,
    allow_split: bool,
    index_shared: Optional[bool] = None,
) -> Tuple[int, int, List[str]]:
    """Fit the run under ``memory_budget`` bytes; returns the adjusted plan.

    The model: the superset-side index is a *fixed* cost paid once when it
    is shared (CSR via shm/fork) and a *per-worker* cost when it is pickled
    into each job (python backend); each concurrent worker additionally
    holds one R-chunk. Two knobs, applied in order: split R into more
    (smaller) chunks until one worker fits, then cap the number of
    concurrent workers so the sum fits. ``allow_split=False`` (resume: the
    chunk split is fixed by the manifest) only caps workers. Raises
    :class:`InvalidParameterError` when even the minimal configuration
    (one worker, single-record chunks) exceeds the budget.

    ``index_shared`` overrides the backend-derived sharing assumption:
    sharded runs pass ``False`` because every shard node builds its own
    index copy (no cross-shard shared memory), so even the array backends
    pay the index per concurrent node there.
    """
    per_entry = _PY_BYTES_PER_ENTRY
    index_bytes = s_entries * (
        _CSR_BYTES_PER_ENTRY
        if backend in ("csr", "hybrid")
        else _PY_BYTES_PER_ENTRY
    )
    shared_index = (
        backend in ("csr", "hybrid") if index_shared is None else index_shared
    )
    fixed = index_bytes if shared_index else 0
    per_worker_index = 0 if shared_index else index_bytes
    avail = budget - fixed

    def chunk_cost(chunks: int) -> int:
        return -(-r_entries // chunks) * per_entry + _CHUNK_FIXED_BYTES

    if avail < per_worker_index + chunk_cost(max_chunks):
        raise InvalidParameterError(
            f"memory_budget={budget} cannot admit this join: the "
            f"{'shared ' if shared_index else ''}index costs "
            f"{index_bytes} bytes and the smallest possible worker needs "
            f"{per_worker_index + chunk_cost(max_chunks)} more; raise the "
            "budget or shrink the inputs"
        )
    notes: List[str] = []
    metrics = active_or_null()
    if allow_split and per_worker_index + chunk_cost(num_chunks) > avail:
        max_entries = (avail - per_worker_index - _CHUNK_FIXED_BYTES) // per_entry
        new_chunks = min(max_chunks, -(-r_entries // max(1, max_entries)))
        if new_chunks > num_chunks:
            notes.append(
                f"memory budget {budget}: R split into {new_chunks} chunks "
                f"(was {num_chunks}) so one chunk fits a worker"
            )
            metrics.inc("supervisor.memory_splits")
            num_chunks = new_chunks
    allowed = int(avail // max(1, per_worker_index + chunk_cost(num_chunks)))
    if allowed < workers:
        allowed = max(1, allowed)
        notes.append(
            f"memory budget {budget}: concurrency capped at {allowed} "
            f"worker(s) (was {workers})"
        )
        metrics.inc("supervisor.memory_caps")
        workers = allowed
    return num_chunks, workers, notes


def parallel_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    method: str = "lcjoin",
    workers: Optional[int] = None,
    backend: str = "python",
    strategy: str = "round_robin",
    index: Optional[Union[InvertedIndex, CSRInvertedIndex]] = None,
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff: float = 0.05,
    backoff_cap: float = 2.0,
    fallback: bool = True,
    faults: Optional[FaultPlan] = None,
    return_report: bool = False,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    deadline: Optional[float] = None,
    memory_budget: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
    shards: Optional[int] = None,
    shard_policy: Optional["ShardPolicy"] = None,
    **kwargs: Any,
) -> Union[List[Tuple[int, int]], Tuple[List[Tuple[int, int]], JoinReport]]:
    """Join with ``workers`` processes (defaults to the CPU count).

    Returns the pair list (rids refer to ``r_collection``), or
    ``(pairs, report)`` with ``return_report=True``. With one worker (or
    one chunk) everything runs in-process, so tests and small inputs pay no
    fork cost.

    The superset-side index is built **once** here and shared with every
    worker — via shared memory for the array backends (``"csr"`` and
    ``"hybrid"``; zero-copy attach, bitmap rows included), via pickling for
    the Python backend (see the module docstring for the measured
    pickle-vs-rebuild costs). Pass a prebuilt ``index=`` to skip
    even the single parent-side build, e.g. when issuing many joins against
    the same ``S``. ``strategy`` selects the ``R`` chunking
    (:func:`split_collection`); round-robin is the default because it stays
    balanced on size-sorted inputs.

    Multi-process runs are supervised: each chunk is a tracked task with up
    to ``retries`` re-dispatches (exponential ``backoff`` capped at
    ``backoff_cap``) and an optional per-attempt ``task_timeout`` that
    catches hung workers. A chunk whose retries are exhausted falls back to
    in-process python-backend execution unless ``fallback=False``, in which
    case :class:`~repro.errors.WorkerFailedError` /
    :class:`~repro.errors.JoinTimeoutError` is raised. ``faults`` (or the
    ``REPRO_FAULTS`` environment variable) injects deterministic worker
    faults for testing — see :mod:`repro.faults`.

    **Durability.** ``checkpoint_dir=`` arms the run log
    (:mod:`repro.core.runlog`): a write-ahead manifest plus one atomic,
    checksummed spill per settled chunk, so a driver crash loses at most
    the in-flight chunks. ``resume=True`` validates the manifest against
    the current datasets/parameters (refusing with
    :class:`~repro.errors.ResumeMismatchError` on mismatch), loads every
    verified spill, and dispatches only the remainder; torn spills are
    discarded and re-executed. While a checkpoint is armed SIGINT/SIGTERM
    cancel the run *cooperatively*: in-flight workers are killed, settled
    spills stay on disk, the ABORTED marker is written, and
    :class:`~repro.errors.JoinCancelledError` is raised. ``deadline=``
    bounds the run's wall clock the same way
    (:class:`~repro.errors.DeadlineExceededError`), and
    ``memory_budget=`` (bytes) admission-controls the plan — oversized
    chunks are split and concurrency capped, each decision recorded in the
    report and warned as :class:`~repro.errors.DegradedExecutionWarning`.

    **Sharding.** ``shards=N`` replaces the shared-memory worker pool with
    the scale-out coordinator (:class:`~repro.core.shard.ShardCoordinator`):
    N independent long-lived *nodes*, each building its own index copy —
    no cross-shard shared memory — with per-shard heartbeats, straggler
    speculation, and whole-shard crash recovery (``shard_policy=`` tunes
    the thresholds). ``workers`` is ignored in this mode; ``retries``,
    ``backoff``/``backoff_cap``, ``fallback``, ``faults`` and the whole
    durability contract above apply unchanged, so a killed coordinator
    resumes a sharded run exactly like a killed driver resumes a pooled
    one.
    """
    workers = workers if workers is not None else multiprocessing.cpu_count()
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend != "python" and method not in BACKEND_METHODS:
        raise InvalidParameterError(
            f"backend={backend!r} is only supported by "
            f"{sorted(BACKEND_METHODS)}; got method={method!r}"
        )
    if deadline is not None and deadline <= 0:
        raise InvalidParameterError(f"deadline must be positive, got {deadline}")
    if memory_budget is not None and memory_budget <= 0:
        raise InvalidParameterError(
            f"memory_budget must be positive, got {memory_budget}"
        )
    if resume and checkpoint_dir is None:
        raise InvalidParameterError("resume=True requires checkpoint_dir=")
    if shards is not None and shards < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {shards}")
    if shard_policy is not None and shards is None:
        raise InvalidParameterError("shard_policy= requires shards=")
    if faults is None:
        faults = FaultPlan.from_env()

    use_shards = shards is not None
    policy: Optional["ShardPolicy"] = None
    if use_shards:
        # Lazy import: shard.py consumes this module's job machinery, so
        # the modules are mutually recursive by design (as with api.py).
        from .shard import ShardCoordinator, ShardPolicy

        policy = shard_policy if shard_policy is not None else ShardPolicy()

    n_records = len(r_collection)
    if shards is not None and policy is not None:
        # More chunks than shards keeps requeue/speculation granular: a
        # dead shard re-runs a slice of its work, not all of it.
        num_chunks = shards * policy.chunks_per_shard
    else:
        num_chunks = workers
    runlog: Optional[RunLog] = None
    completed: Dict[int, List[Tuple[int, int]]] = {}
    discarded: List[int] = []
    kwargs_repr = repr(sorted(kwargs.items()))
    if checkpoint_dir is not None and n_records > 0:
        r_fp = collection_fingerprint(r_collection)
        s_fp = collection_fingerprint(s_collection)
        if resume and RunLog.exists(checkpoint_dir):
            runlog = RunLog.open(checkpoint_dir, plan=faults)
            runlog.manifest.validate(
                r_fp, s_fp, method, backend, strategy, kwargs_repr, n_records
            )
            # The manifest's chunk split is authoritative: spilled chunk
            # ids only name the same work under the same split. ``workers``
            # still caps concurrency below.
            num_chunks = runlog.manifest.num_chunks
            strategy = runlog.manifest.strategy
            runlog.reclaim_stale_segments()
            completed, discarded = runlog.load_chunks()

    admission_notes: List[str] = []
    if memory_budget is not None and n_records > 0:
        concurrency = shards if shards is not None else workers
        num_chunks, concurrency, admission_notes = _admit_memory(
            memory_budget,
            collection_footprint(r_collection),
            collection_footprint(s_collection),
            concurrency,
            num_chunks,
            max_chunks=n_records,
            backend=backend,
            allow_split=runlog is None,
            index_shared=False if use_shards else None,
        )
        if use_shards:
            shards = concurrency
        else:
            workers = concurrency
        for note in admission_notes:
            warnings.warn(note, DegradedExecutionWarning, stacklevel=2)

    chunks = split_collection(r_collection, num_chunks, strategy=strategy)
    if not chunks:
        report = JoinReport(workers=workers)
        return ([], report) if return_report else []
    if runlog is None and checkpoint_dir is not None:
        manifest = RunManifest(
            run_id=uuid.uuid4().hex,
            r_fingerprint=r_fp,
            s_fingerprint=s_fp,
            method=method,
            backend=backend,
            strategy=strategy,
            kwargs_repr=kwargs_repr,
            num_chunks=len(chunks),
            n_records=n_records,
            created=time.time(),
        )
        runlog = RunLog.create(checkpoint_dir, manifest, plan=faults)

    if runlog is not None and len(completed) == len(chunks):
        # Every chunk already settled durably (e.g. resuming a COMPLETE
        # run): no index build, no dispatch — just merge the spills.
        report = JoinReport(
            chunks=[
                ChunkReport(
                    chunk=i,
                    size=len(piece),
                    attempts=[
                        AttemptRecord(
                            number=0, mode="checkpoint",
                            outcome="resumed", duration=0.0,
                        )
                    ],
                )
                for i, (__, piece) in enumerate(chunks)
            ],
            workers=workers,
            fault_plan=faults.describe() if faults is not None else None,
            resumed_chunks=sorted(completed),
            reexecuted_chunks=sorted(discarded),
            checkpoint_dir=checkpoint_dir,
        )
        runlog.mark_complete()
        resumed_out: List[Tuple[int, int]] = []
        for i in range(len(chunks)):
            resumed_out.extend(completed[i])
        return (resumed_out, report) if return_report else resumed_out

    extra: Dict[str, Any] = {}
    if method in _ORDER_METHODS and "order" not in kwargs:
        universe = max(
            r_collection.max_element(), s_collection.max_element()
        ) + 1
        extra["order"] = build_order(s_collection, universe=universe)

    shared_index = (
        None
        if use_shards
        else build_method_index(s_collection, method, backend, index)
    )

    in_process = not use_shards and (len(chunks) == 1 or workers == 1)
    handle: Optional[SharedCSRHandle] = None
    fork_token: Optional[int] = None
    own_token = cancel is None
    token = cancel
    if token is None and (runlog is not None or deadline is not None):
        token = CancelToken()
    deadline_mark = deadline_at(deadline)
    with contextlib.ExitStack() as scope:
        if runlog is not None and token is not None:
            # Durable runs turn SIGINT/SIGTERM into a graceful abort:
            # settle-or-kill in-flight chunks, flush spills, write ABORTED.
            scope.enter_context(signal_cancellation(token))
        try:
            primary_mode = "none"
            payloads: Dict[str, Optional[_IndexPayload]] = {"none": None, "local": None}
            if shared_index is not None:
                payloads["pickle"] = ("pickle", shared_index)
                if in_process:
                    primary_mode = "direct"
                    payloads["direct"] = ("direct", shared_index)
                elif backend != "python" and isinstance(
                    shared_index, CSRInvertedIndex
                ):
                    try:
                        handle = shared_index.to_shared_memory()
                        primary_mode = "shm"
                        payloads["shm"] = ("shm", handle)
                    except OSError:
                        # No usable /dev/shm (containers with tiny or absent
                        # shm mounts). Fall back to fork-inherited copy-on-
                        # write pages, then to plain pickling.
                        if multiprocessing.get_start_method() == "fork":
                            fork_token = id(shared_index)
                            _FORK_SHARED[fork_token] = shared_index
                            primary_mode = "fork"
                            payloads["fork"] = ("fork", fork_token)
                        else:  # pragma: no cover - non-fork platforms only
                            primary_mode = "pickle"
                else:
                    primary_mode = "pickle"
            if runlog is not None and handle is not None:
                # Persist the segment names: a hard driver kill leaks them
                # in /dev/shm, and resume reclaims exactly this list.
                runlog.record_segments([name for name, __, __ in handle.segments])

            def make_job(chunk_id: int, mode: str) -> Tuple[Any, ...]:
                rid_map, piece = chunks[chunk_id]
                if mode == "local":
                    # Degradation terminus: in-process, pure-python backend,
                    # method builds its own chunk-scoped structures. Slowest
                    # path, fewest moving parts.
                    return (rid_map, piece, s_collection, method, "python",
                            None, extra, kwargs)
                return (rid_map, piece, s_collection, method, backend,
                        payloads[mode], extra, kwargs)

            on_result = runlog.record_chunk if runlog is not None else None
            if in_process:
                results, report = _run_in_process(
                    chunks,
                    make_job,
                    primary_mode,
                    completed=completed,
                    on_result=on_result,
                    cancel=token,
                    deadline_mark=deadline_mark,
                )
            elif shards is not None and policy is not None:
                coordinator = ShardCoordinator(
                    chunks=chunks,
                    s_collection=s_collection,
                    method=method,
                    backend=backend,
                    extra=extra,
                    kwargs=kwargs,
                    shards=shards,
                    policy=policy,
                    retries=retries,
                    backoff=backoff,
                    backoff_cap=backoff_cap,
                    fallback=fallback,
                    plan=faults,
                    make_job=make_job,
                    runner=_join_chunk,
                    on_result=on_result,
                    cancel=token,
                    deadline_mark=deadline_mark,
                    completed=completed,
                )
                by_chunk = coordinator.run()
                with trace_span("shard.merge"):
                    # Deterministic merge order — chunk id, not settle
                    # order — keeps the pair set byte-identical to serial
                    # however speculation and requeues shuffled the work.
                    results = [by_chunk[i] for i in range(len(chunks))]
                report = coordinator.report
            else:
                supervisor = Supervisor(
                    num_chunks=len(chunks),
                    make_job=make_job,
                    runner=_join_chunk,
                    primary_mode=primary_mode,
                    workers=workers,
                    retries=retries,
                    task_timeout=task_timeout,
                    backoff=backoff,
                    backoff_cap=backoff_cap,
                    fallback=fallback,
                    plan=faults,
                    chunk_sizes=[len(piece) for __, piece in chunks],
                    on_result=on_result,
                    cancel=token,
                    deadline_at=deadline_mark,
                    completed=completed,
                )
                by_chunk = supervisor.run()
                results = [by_chunk[i] for i in range(len(chunks))]
                report = supervisor.report
        except BaseException as exc:
            if runlog is not None:
                runlog.mark_aborted(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            if handle is not None:
                handle.cleanup()
            if fork_token is not None:
                _FORK_SHARED.pop(fork_token, None)
            if own_token and token is not None:
                token.close()
    report.degradations.extend(admission_notes)
    if runlog is not None:
        runlog.mark_complete()
        report.checkpoint_dir = checkpoint_dir
        report.reexecuted_chunks = sorted(discarded)
        report.degradations.extend(runlog.notes)
    out: List[Tuple[int, int]] = []
    for part in results:
        out.extend(part)
    return (out, report) if return_report else out


def _run_in_process(
    chunks: List[Tuple[Union[int, List[int]], SetCollection]],
    make_job: Any,
    primary_mode: str,
    completed: Optional[Dict[int, List[Tuple[int, int]]]] = None,
    on_result: Optional[Callable[[int, int, List[Tuple[int, int]]], None]] = None,
    cancel: Optional[CancelToken] = None,
    deadline_mark: Optional[float] = None,
) -> Tuple[List[List[Tuple[int, int]]], JoinReport]:
    """The no-fork fast path, reported in the same shape as supervised runs.

    Honours the same durability contract as the supervised path: resumed
    chunks are merged without re-execution, each settled chunk streams
    through ``on_result``, and cancellation/deadline are checked between
    chunks (a cooperative abort cannot interrupt a chunk mid-join without
    a worker process to kill).
    """
    completed = completed or {}
    report = JoinReport(workers=1)
    metrics = active_or_null()
    results: List[List[Tuple[int, int]]] = []
    start = time.perf_counter()
    for chunk_id, (__, piece) in enumerate(chunks):
        if chunk_id in completed:
            results.append(completed[chunk_id])
            report.chunks.append(
                ChunkReport(
                    chunk=chunk_id,
                    size=len(piece),
                    attempts=[
                        AttemptRecord(
                            number=0, mode="checkpoint",
                            outcome="resumed", duration=0.0,
                        )
                    ],
                )
            )
            report.resumed_chunks.append(chunk_id)
            continue
        if cancel is not None and cancel.cancelled:
            metrics.inc("supervisor.cancellations")
            raise JoinCancelledError(
                cancel.reason or "cancelled", chunk_id, len(chunks)
            )
        if deadline_mark is not None and time.monotonic() >= deadline_mark:
            metrics.inc("supervisor.deadline_aborts")
            raise DeadlineExceededError(
                "overall deadline exceeded", chunk_id, len(chunks)
            )
        t0 = time.perf_counter()
        pairs = _join_chunk(make_job(chunk_id, primary_mode))
        results.append(pairs)
        if on_result is not None:
            on_result(chunk_id, 1, pairs)
        report.chunks.append(
            ChunkReport(
                chunk=chunk_id,
                size=len(piece),
                attempts=[
                    AttemptRecord(
                        number=1,
                        mode=primary_mode,
                        outcome="ok",
                        duration=time.perf_counter() - t0,
                    )
                ],
            )
        )
    report.elapsed_seconds = time.perf_counter() - start
    return results, report
