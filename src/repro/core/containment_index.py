"""A reusable containment-query index over one collection.

The paper's framework computes an *all-pair* join, but its §III-B machinery
("all pair set containment search") works one query at a time: probe the
query's inverted lists cross-cutting style. :class:`ContainmentIndex`
packages that as a library feature — index a collection once, then ask

* :meth:`supersets_of` — which indexed sets **contain** the query
  (cross-cutting probe of the query's inverted lists, Algorithm 1's inner
  loop); this is the publish/subscribe direction, and
* :meth:`subsets_of` — which indexed sets **are contained in** the query
  (a lazily built prefix tree over the indexed sets is walked, descending
  only through elements the query has — each indexed subset is reported
  exactly once via its end marker).

Both directions accept either element ids or raw values when the indexed
collection was built through an :class:`~repro.data.collection.ElementDictionary`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree
from .framework import cross_cut_record
from .order import GlobalOrder, build_order
from .results import PairListSink
from .stats import JoinStats

__all__ = ["ContainmentIndex"]


class ContainmentIndex:
    """Index one :class:`SetCollection` for repeated containment queries."""

    def __init__(self, collection: SetCollection, order: Optional[GlobalOrder] = None):
        self._collection = collection
        self._index = InvertedIndex.build(collection)
        self._order = order if order is not None else build_order(collection)
        self._tree: Optional[PrefixTree] = None  # built on first subsets_of

    def __len__(self) -> int:
        return len(self._collection)

    @property
    def collection(self) -> SetCollection:
        """The indexed collection (ids in query answers refer to it)."""
        return self._collection

    @property
    def inverted_index(self) -> InvertedIndex:
        """The underlying inverted index, for advanced reuse."""
        return self._index

    # -- growth --------------------------------------------------------------

    def add(self, record: Iterable[Hashable]) -> int:
        """Append one set to the indexed collection, returning its id.

        The inverted index grows incrementally (appended ids stay sorted);
        the subsets-of prefix tree is invalidated and lazily rebuilt, and
        the global order keeps its original frequency snapshot — element
        *order* is a tie-breaking heuristic, so a stale snapshot affects
        only performance, never answers.
        """
        sid = self._collection.append(record)
        appended = self._collection[sid]
        self._index.append_set(appended)
        if appended and appended[-1] >= len(self._order.rank):
            self._order.extend_to(appended[-1] + 1)
        self._tree = None
        return sid

    # -- queries -----------------------------------------------------------

    def _encode(self, query: Iterable[Hashable]) -> Optional[List[int]]:
        """Raw values -> element ids; None when a value was never indexed
        (then no indexed set can relate to the query in the superset
        direction, and the value is simply ignorable for subsets)."""
        dictionary = self._collection.dictionary
        ids: List[int] = []
        missing = False
        for value in query:
            if isinstance(value, int) and dictionary is None:
                ids.append(value)
                continue
            if dictionary is None:
                raise TypeError(
                    "query has non-integer elements but the indexed "
                    "collection was not built through a dictionary"
                )
            eid = dictionary.encode_existing(value)
            if eid is None:
                missing = True
            else:
                ids.append(eid)
        return None if missing else ids

    def supersets_of(
        self, query: Iterable[Hashable], stats: Optional[JoinStats] = None
    ) -> List[int]:
        """Ids of indexed sets ``S`` with ``query ⊆ S``, ascending.

        An empty query is contained in everything.
        """
        ids = self._encode(query)
        if ids is None:
            # Some query element never occurs in the collection: nothing
            # can contain the query.
            return []
        if not ids:
            return list(self._index.universe)
        lists = self._index.get_lists(set(ids))
        if not min(lists, key=len):
            return []
        sink = PairListSink()
        cross_cut_record(
            0, sorted(lists, key=len), self._index.universe[0],
            self._index.inf_sid, sink, True, stats,
        )
        return [sid for __, sid in sink.pairs]

    def subsets_of(self, query: Iterable[Hashable]) -> List[int]:
        """Ids of indexed sets ``S`` with ``S ⊆ query``, ascending.

        Walks the prefix tree of the indexed collection, descending only
        through elements present in the query; cost is proportional to the
        part of the tree the query covers, not the collection size.
        """
        dictionary = self._collection.dictionary
        ids = set()
        for value in query:
            if isinstance(value, int) and dictionary is None:
                ids.add(value)
            elif dictionary is not None:
                eid = dictionary.encode_existing(value)
                if eid is not None:
                    ids.add(eid)
            else:
                raise TypeError(
                    "query has non-integer elements but the indexed "
                    "collection was not built through a dictionary"
                )
        if self._tree is None:
            self._tree = PrefixTree.build(self._collection, self._order)
        out: List[int] = []
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                if child.terminal_rids is not None:
                    out.extend(child.terminal_rids)
                elif all(e in ids for e in child.elements):
                    stack.append(child)
        out.sort()
        return out

    def join(self, r_collection: SetCollection, method: str = "lcjoin", **kwargs):
        """All-pair join ``r_collection ⋈⊆ indexed collection``, reusing
        this index's inverted lists where the method supports it."""
        from .api import set_containment_join

        if method in ("framework", "framework_et", "tree", "tree_et",
                      "all_partition", "lcjoin", "bnl", "pretti", "limit"):
            kwargs.setdefault("index", self._index)
        return set_containment_join(
            r_collection, self._collection, method=method, **kwargs
        )
