"""Supervised task execution for the multiprocess join driver.

:func:`repro.core.parallel.parallel_join` decomposes ``R ⋈⊆ S`` into
independent chunk joins (``∪ᵢ Rᵢ ⋈⊆ S``), which makes every chunk
*re-executable*: a worker that crashes, hangs, or raises can simply be run
again without affecting any other chunk's result. This module is the layer
that exploits that property. The bare ``multiprocessing.Pool`` it replaces
had no failure model at all — a dead worker stalled ``map`` forever and a
hung one poisoned the whole join.

Each chunk becomes a tracked task with a lifecycle::

    pending -> running -> ok
                 |-> error / crash / timeout -> backoff -> running (retry)
                                   |-> (retries exhausted) -> local fallback

* **Detection.** Workers report through a one-way pipe; the supervisor
  waits on the pipes, so a normal result, a raised exception, and a silent
  death (EOF without a message, exit code captured) are all distinguished.
  A ``task_timeout`` deadline catches hangs: the worker is terminated
  (then killed) and the attempt is recorded as a timeout.
* **Retry.** Failed attempts are re-dispatched with capped exponential
  backoff (``backoff * 2**(attempt-1)``, capped at ``backoff_cap``). Every
  attempt is recorded in the :class:`~repro.core.results.JoinReport`.
* **Degradation.** Failures classified as shared-memory attach errors
  (:class:`~repro.errors.ShmAttachError`) downgrade that chunk's payload
  from ``shm`` to ``pickle``; after ``SHM_FAILURE_THRESHOLD`` such failures
  the *whole run* downgrades — a segment that will not map twice will not
  map ten times, so retries stop burning on it. A chunk that exhausts its
  retries falls back to **in-process execution on the pure-python
  backend** — strictly slower, but correct and isolated from whatever
  killed the workers. Both downgrades emit
  :class:`~repro.errors.DegradedExecutionWarning` and are recorded in the
  report. With ``fallback=False`` the exhausted chunk raises
  :class:`~repro.errors.WorkerFailedError` (or its subclass
  :class:`~repro.errors.JoinTimeoutError` for a final timeout) instead.

Fault injection (:mod:`repro.faults`) hooks into exactly two points of the
worker entry — before the chunk join starts and before a shared-memory
payload resolves — so the chaos suite can script crashes, hangs, raises,
and attach failures per ``(chunk, attempt)`` deterministically.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    DeadlineExceededError,
    DegradedExecutionWarning,
    InvalidParameterError,
    JoinCancelledError,
    JoinTimeoutError,
    ShmAttachError,
    WorkerFailedError,
)
from ..faults import FaultPlan
from ..obs.registry import active_or_null
from ..obs.spans import trace_span
from .results import AttemptRecord, ChunkReport, JoinReport
from .runlog import CancelToken

__all__ = ["Supervisor", "SHM_FAILURE_THRESHOLD", "interruptible_wait"]

#: Attempt-outcome label -> counter name (see repro.obs.catalogue).
_OUTCOME_COUNTERS = {
    "ok": "supervisor.ok",
    "error": "supervisor.errors",
    "crash": "supervisor.crashes",
    "timeout": "supervisor.timeouts",
}

#: Attach-classified failures tolerated before the whole run stops using
#: shared memory. Two distinct failures rule out a one-off racy unlink.
SHM_FAILURE_THRESHOLD = 2

#: Grace period between SIGTERM and SIGKILL for a worker past its deadline,
#: and the join() allowance for a worker that already sent its result.
_KILL_GRACE = 1.0

def interruptible_wait(
    timeout: float,
    cancel: Optional[CancelToken] = None,
    deadline_mark: Optional[float] = None,
    extra: Tuple[Any, ...] = (),
) -> None:
    """Sleep up to ``timeout`` seconds, waking early on any abort signal.

    A capped-backoff delay must never outlive the reasons to keep waiting:
    a cancellation (SIGINT/SIGTERM routed into the :class:`CancelToken`),
    the run's absolute deadline, or any handle in ``extra`` becoming ready
    (the shard coordinator passes live process sentinels here, so a shard
    dying mid-backoff reschedules its work immediately). Anything with a
    ``fileno()`` — tokens, pipe connections, raw sentinel fds — is a valid
    ``extra`` entry. Falls back to a plain bounded sleep when there is
    nothing to watch.
    """
    if deadline_mark is not None:
        timeout = min(timeout, max(0.0, deadline_mark - time.monotonic()))
    if timeout <= 0:
        return
    handles: List[Any] = list(extra)
    if cancel is not None:
        handles.append(cancel)
    if handles:
        wait(handles, timeout=timeout)
    else:
        time.sleep(timeout)


#: A job tuple as consumed by ``repro.core.parallel._join_chunk``.
_Job = Tuple[Any, ...]
_Runner = Callable[[_Job], List[Tuple[int, int]]]
#: Builds the job for (chunk_id, mode); runs in the parent only.
_JobFactory = Callable[[int, str], _Job]


def _worker_main(
    conn: Connection,
    runner: _Runner,
    chunk_id: int,
    attempt: int,
    mode: str,
    plan: Optional[FaultPlan],
    job: _Job,
) -> None:
    """Worker-process entry: run one chunk attempt, report on the pipe.

    Every outcome funnels into exactly one message — ``("ok", pairs)`` or
    ``("err", type_name, text, is_attach_failure)`` — or, for a crash, no
    message at all (the parent reads EOF and the exit code). Fault rules
    fire here, in the worker, so an injected crash takes down a real
    process the same way a segfault would.
    """
    try:
        if plan is not None:
            plan.fire_worker_start(chunk_id, attempt)
            if mode == "shm":
                plan.fire_attach(chunk_id, attempt)
        result = runner(job)
    except BaseException as exc:  # noqa: B036 - forwarded, not swallowed
        try:
            conn.send(
                ("err", type(exc).__name__, str(exc), isinstance(exc, ShmAttachError))
            )
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    finally:
        conn.close()


@dataclass
class _Task:
    """Parent-side state of one chunk across its attempts."""

    chunk_id: int
    mode: str
    attempts: int = 0
    ready_at: float = 0.0
    last_error: str = ""
    last_outcome: str = ""


class _Attempt:
    """One in-flight worker process."""

    __slots__ = ("task", "process", "conn", "started", "deadline")

    def __init__(
        self,
        task: _Task,
        process: multiprocessing.Process,
        conn: Connection,
        started: float,
        deadline: Optional[float],
    ) -> None:
        self.task = task
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline


class Supervisor:
    """Dispatch chunk joins as supervised, retryable worker tasks.

    Parameters
    ----------
    num_chunks:
        How many chunk tasks to run (chunk ids ``0..num_chunks-1``).
    make_job:
        Parent-side factory producing the picklable job tuple for a chunk
        in a given payload mode (``"shm"``/``"fork"``/``"pickle"``/
        ``"none"``/``"local"``). Called again on downgrade, so the payload
        can differ per attempt.
    runner:
        The chunk-join function executed in the worker (and in-process for
        the ``local`` fallback).
    primary_mode:
        The payload mode first attempts use. Only ``"shm"`` participates in
        the attach-downgrade ladder.
    workers:
        Maximum concurrently running worker processes.
    retries:
        Re-dispatches allowed per chunk after its first failure.
    task_timeout:
        Per-attempt deadline in seconds (``None`` disables hang detection).
    backoff / backoff_cap:
        Base and cap of the exponential retry delay.
    fallback:
        When ``True`` (default) an exhausted chunk runs in-process on the
        python backend; when ``False`` it raises.
    plan:
        Optional :class:`~repro.faults.FaultPlan` shipped to workers.
    on_result:
        Called as ``on_result(chunk_id, attempt, pairs)`` the moment a
        chunk settles ok (worker or fallback). The durable-run layer wires
        this to ``RunLog.record_chunk`` so results stream to disk as they
        arrive instead of at join end.
    cancel:
        Optional :class:`~repro.core.runlog.CancelToken`. Its read fd joins
        the dispatch loop's wait set; once cancelled the loop kills
        in-flight workers and raises
        :class:`~repro.errors.JoinCancelledError`.
    deadline_at:
        Absolute ``time.monotonic()`` instant after which the run aborts
        with :class:`~repro.errors.DeadlineExceededError`.
    completed:
        Chunk results already known (resumed from a checkpoint): seeded
        into the result map, recorded in the report as ``resumed``
        attempts, and never dispatched.
    """

    def __init__(
        self,
        num_chunks: int,
        make_job: _JobFactory,
        runner: _Runner,
        primary_mode: str,
        workers: int,
        retries: int = 2,
        task_timeout: Optional[float] = None,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        fallback: bool = True,
        plan: Optional[FaultPlan] = None,
        chunk_sizes: Optional[List[int]] = None,
        on_result: Optional[Callable[[int, int, List[Tuple[int, int]]], None]] = None,
        cancel: Optional[CancelToken] = None,
        deadline_at: Optional[float] = None,
        completed: Optional[Dict[int, List[Tuple[int, int]]]] = None,
    ) -> None:
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise InvalidParameterError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        if backoff < 0:
            raise InvalidParameterError(f"backoff must be >= 0, got {backoff}")
        self._make_job = make_job
        self._runner = runner
        self._workers = workers
        self._retries = retries
        self._task_timeout = task_timeout
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._fallback = fallback
        self._plan = plan
        self._on_result = on_result
        self._cancel = cancel
        self._deadline_at = deadline_at
        # Captured once: supervision events are rare (per attempt, not per
        # probe), so the null-registry indirection costs nothing measurable.
        self._metrics = active_or_null()
        self._mp = multiprocessing.get_context()
        self._tasks = [_Task(chunk_id=i, mode=primary_mode) for i in range(num_chunks)]
        self._running: List[_Attempt] = []
        self._results: Dict[int, List[Tuple[int, int]]] = {}
        self._shm_failures = 0
        self._shm_disabled = primary_mode != "shm"
        sizes = chunk_sizes if chunk_sizes is not None else [0] * num_chunks
        self.report = JoinReport(
            chunks=[ChunkReport(chunk=i, size=sizes[i]) for i in range(num_chunks)],
            workers=workers,
            fault_plan=plan.describe() if plan is not None else None,
        )
        for chunk_id, pairs in (completed or {}).items():
            # Resumed chunks are settled before the loop starts: seeded into
            # the result map so dispatch skips them, with a synthetic
            # attempt record so the report's trail shows the provenance.
            self._results[chunk_id] = pairs
            self.report.chunks[chunk_id].attempts.append(
                AttemptRecord(
                    number=0, mode="checkpoint", outcome="resumed", duration=0.0
                )
            )
            self.report.resumed_chunks.append(chunk_id)
        self.report.resumed_chunks.sort()

    # -- public entry ------------------------------------------------------

    def run(self) -> Dict[int, List[Tuple[int, int]]]:
        """Execute every chunk to completion; returns results by chunk id.

        Raises only when a chunk cannot be completed at all: fallback
        disabled, or the in-process fallback itself failing (a
        deterministic error such as a bad keyword argument reproduces
        in-process and propagates as itself).
        """
        start = time.perf_counter()
        try:
            with trace_span("parallel.supervise"):
                self._loop()
        finally:
            self._reap_stragglers()
            self.report.elapsed_seconds += time.perf_counter() - start
        return self._results

    # -- event loop --------------------------------------------------------

    def _check_abort(self) -> None:
        """Raise the matching abort error once a cancel/deadline lands.

        Raising from inside :meth:`_loop` routes through ``run``'s
        ``finally``, so in-flight workers are killed and their pipes closed
        before the error reaches the caller — "settle or kill" with no
        orphaned processes.
        """
        if self._cancel is not None and self._cancel.cancelled:
            self._metrics.inc("supervisor.cancellations")
            raise JoinCancelledError(
                self._cancel.reason or "cancelled",
                len(self._results),
                len(self._tasks),
            )
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            self._metrics.inc("supervisor.deadline_aborts")
            raise DeadlineExceededError(
                "overall deadline exceeded", len(self._results), len(self._tasks)
            )

    def _loop(self) -> None:
        pending = [t for t in self._tasks if t.chunk_id not in self._results]
        while pending or self._running:
            self._check_abort()
            now = time.monotonic()
            pending = self._launch_ready(pending, now)
            timeout = self._next_wakeup(pending, time.monotonic())
            handles: List[Any] = [a.conn for a in self._running]
            handles.extend(a.process.sentinel for a in self._running)
            if handles:
                if self._cancel is not None:
                    handles.append(self._cancel)
                wait(handles, timeout=timeout)
            elif timeout is not None:
                # Nothing in flight — everything pending sits in a capped
                # retry backoff. The wait must still abort the moment a
                # cancel or the deadline lands, not sleep the backoff out.
                interruptible_wait(timeout, self._cancel, self._deadline_at)
            self._check_abort()
            for attempt in list(self._running):
                outcome = self._poll(attempt)
                if outcome is None:
                    continue
                self._running.remove(attempt)
                retry = self._settle(attempt, outcome)
                if retry is not None:
                    pending.append(retry)

    def _launch_ready(self, pending: List[_Task], now: float) -> List[_Task]:
        still_pending: List[_Task] = []
        for task in pending:
            if len(self._running) >= self._workers or task.ready_at > now:
                still_pending.append(task)
                continue
            self._spawn(task)
        return still_pending

    def _next_wakeup(self, pending: List[_Task], now: float) -> Optional[float]:
        marks: List[float] = [
            a.deadline for a in self._running if a.deadline is not None
        ]
        if self._deadline_at is not None:
            marks.append(self._deadline_at)
        if len(self._running) < self._workers:
            marks.extend(t.ready_at for t in pending if t.ready_at > now)
        if not marks:
            return None
        return max(0.0, min(marks) - now)

    def _spawn(self, task: _Task) -> None:
        task.attempts += 1
        job = self._make_job(task.chunk_id, task.mode)
        recv_conn, send_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_worker_main,
            args=(
                send_conn,
                self._runner,
                task.chunk_id,
                task.attempts,
                task.mode,
                self._plan,
                job,
            ),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end: the read end then hits
        # EOF the moment the worker dies, which is what turns a silent
        # crash into a prompt wakeup instead of a stall.
        send_conn.close()
        started = time.monotonic()
        deadline = (
            started + self._task_timeout if self._task_timeout is not None else None
        )
        self._running.append(_Attempt(task, process, recv_conn, started, deadline))

    # -- attempt completion ------------------------------------------------

    def _poll(self, attempt: _Attempt) -> Optional[Tuple[str, Any]]:
        """Classify a finished attempt, or ``None`` if still running.

        Returns ``("ok", pairs)``, ``("err", (type, text, attach_flag))``,
        ``("crash", exitcode)`` or ``("timeout", deadline_seconds)``.
        """
        if attempt.conn.poll():
            try:
                message = attempt.conn.recv()
            except (EOFError, OSError):
                message = None
            attempt.process.join(_KILL_GRACE)
            if message is not None and message[0] == "ok":
                return ("ok", message[1])
            if message is not None:
                return ("err", tuple(message[1:]))
            return ("crash", attempt.process.exitcode)
        if not attempt.process.is_alive():
            # Died without the pipe signalling (shouldn't happen with the
            # write end closed, but sentinels are the belt to that brace).
            attempt.process.join(_KILL_GRACE)
            return ("crash", attempt.process.exitcode)
        if attempt.deadline is not None and time.monotonic() >= attempt.deadline:
            self._kill(attempt.process)
            return ("timeout", self._task_timeout)
        return None

    def _kill(self, process: multiprocessing.Process) -> None:
        process.terminate()
        process.join(_KILL_GRACE)
        if process.is_alive():  # pragma: no cover - SIGTERM normally lands
            process.kill()
            process.join(_KILL_GRACE)

    def _settle(
        self, attempt: _Attempt, outcome: Tuple[str, Any]
    ) -> Optional[_Task]:
        """Record the attempt; return the task again if it must retry."""
        task = attempt.task
        kind, detail = outcome
        duration = time.monotonic() - attempt.started
        attempt.conn.close()
        if kind == "ok":
            self._record(task, "ok", duration)
            self._results[task.chunk_id] = detail
            if self._on_result is not None:
                self._on_result(task.chunk_id, task.attempts, detail)
            return None
        attach_failed = False
        if kind == "err":
            type_name, text, attach_failed = detail
            task.last_error = f"{type_name}: {text}"
        elif kind == "crash":
            task.last_error = f"worker died (exit code {detail})"
        else:
            task.last_error = f"worker exceeded task_timeout={detail}s"
        task.last_outcome = "error" if kind == "err" else kind
        # Record before any downgrade mutates task.mode: the report must
        # show the mode the attempt actually ran under.
        self._record(task, task.last_outcome, duration, task.last_error)
        if attach_failed:
            self._note_attach_failure(task)
        if task.attempts <= self._retries:
            self._metrics.inc("supervisor.retries")
            delay = min(
                self._backoff * (2 ** (task.attempts - 1)), self._backoff_cap
            )
            task.ready_at = time.monotonic() + delay
            if self._shm_disabled and task.mode == "shm":
                task.mode = "pickle"
            return task
        self._run_fallback(task)
        return None

    def _record(
        self, task: _Task, outcome: str, duration: float, error: Optional[str] = None
    ) -> None:
        self._metrics.inc("supervisor.attempts")
        self._metrics.inc(_OUTCOME_COUNTERS[outcome])
        self.report.chunks[task.chunk_id].attempts.append(
            AttemptRecord(
                number=task.attempts,
                mode=task.mode,
                outcome=outcome,
                duration=duration,
                error=error,
            )
        )

    # -- degradation ladder ------------------------------------------------

    def _note_attach_failure(self, task: _Task) -> None:
        self._shm_failures += 1
        if task.mode == "shm":
            self._degrade(
                f"chunk {task.chunk_id}: shm attach failed, payload "
                "downgraded to pickle"
            )
            task.mode = "pickle"
        if not self._shm_disabled and self._shm_failures >= SHM_FAILURE_THRESHOLD:
            self._shm_disabled = True
            self._degrade(
                f"{self._shm_failures} shm attach failures: run downgraded "
                "to the pickle payload path"
            )
            for other in self._tasks:
                if other.mode == "shm" and other.chunk_id not in self._results:
                    other.mode = "pickle"

    def _degrade(self, note: str) -> None:
        self._metrics.inc("supervisor.degradations")
        self.report.degradations.append(note)
        warnings.warn(note, DegradedExecutionWarning, stacklevel=2)

    def _run_fallback(self, task: _Task) -> None:
        if not self._fallback:
            exc_cls = (
                JoinTimeoutError if task.last_outcome == "timeout" else WorkerFailedError
            )
            raise exc_cls(task.chunk_id, task.attempts, task.last_error)
        self._degrade(
            f"chunk {task.chunk_id}: {task.attempts} worker attempt(s) failed "
            f"({task.last_error}); falling back to in-process python execution"
        )
        self._metrics.inc("supervisor.fallbacks")
        task.mode = "local"
        task.attempts += 1
        started = time.monotonic()
        try:
            result = self._runner(self._make_job(task.chunk_id, "local"))
        except BaseException:
            self._record(
                task, "error", time.monotonic() - started, task.last_error
            )
            raise
        self._record(task, "ok", time.monotonic() - started)
        self._results[task.chunk_id] = result
        if self._on_result is not None:
            self._on_result(task.chunk_id, task.attempts, result)

    # -- teardown ----------------------------------------------------------

    def _reap_stragglers(self) -> None:
        """Abort path: no worker process or pipe may outlive the join."""
        for attempt in self._running:
            if attempt.process.is_alive():
                self._kill(attempt.process)
            attempt.conn.close()
        self._running = []
