"""Ground-truth verification helpers used by tests and the bench harness."""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..data.collection import SetCollection

__all__ = ["ground_truth", "check_join_result", "is_subset_sorted"]


def is_subset_sorted(small: Tuple[int, ...], big: Tuple[int, ...]) -> bool:
    """Subset test on two sorted duplicate-free tuples by merging.

    Faster than building frozensets when called once per pair, and the
    records in a :class:`SetCollection` are already sorted.
    """
    if len(small) > len(big):
        return False
    j = 0
    nb = len(big)
    for e in small:
        while j < nb and big[j] < e:
            j += 1
        if j == nb or big[j] != e:
            return False
        j += 1
    return True


def ground_truth(
    r_collection: SetCollection, s_collection: SetCollection
) -> List[Tuple[int, int]]:
    """All containment pairs by brute force (quadratic; testing only)."""
    s_sets = [frozenset(rec) for rec in s_collection]
    out: List[Tuple[int, int]] = []
    for rid, record in enumerate(r_collection):
        rset = frozenset(record)
        for sid, sset in enumerate(s_sets):
            if rset <= sset:
                out.append((rid, sid))
    return out


def check_join_result(
    pairs: Iterable[Tuple[int, int]],
    r_collection: SetCollection,
    s_collection: SetCollection,
) -> None:
    """Assert that ``pairs`` is exactly the containment join, or raise.

    Raises ``AssertionError`` naming the first false positive, the first
    missing pair, or any duplicate — the failure modes of a broken join.
    """
    seen: Set[Tuple[int, int]] = set()
    for rid, sid in pairs:
        if (rid, sid) in seen:
            raise AssertionError(f"duplicate result pair ({rid}, {sid})")
        seen.add((rid, sid))
        if not is_subset_sorted(r_collection[rid], s_collection[sid]):
            raise AssertionError(
                f"false positive: R{rid}={r_collection[rid]} is not a subset "
                f"of S{sid}={s_collection[sid]}"
            )
    expected = set(ground_truth(r_collection, s_collection))
    missing = expected - seen
    if missing:
        rid, sid = sorted(missing)[0]
        raise AssertionError(
            f"missing pair ({rid}, {sid}): R{rid}={r_collection[rid]} ⊆ "
            f"S{sid}={s_collection[sid]} but was not reported "
            f"({len(missing)} missing in total)"
        )
