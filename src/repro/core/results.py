"""Result sinks.

On skewed inputs a containment join's output can be far larger than its
input (every small set joins with thousands of supersets), and the paper's
TWITTER preprocessing ("removed the sets with more than 5000 elements to
keep the number of results reasonable") exists precisely because of that.
Materialising every pair is therefore a *choice*, not a given — benchmarks
usually only need the count.

All algorithms emit through a sink with a single ``add(rid, sid)`` method;
three implementations cover the practical cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Collection, Iterable, List, Optional, Protocol, Tuple, Union

from ..errors import InvalidParameterError

__all__ = [
    "PairSink",
    "PairListSink",
    "CountSink",
    "CallbackSink",
    "make_sink",
    "AttemptRecord",
    "ChunkReport",
    "ShardReport",
    "JoinReport",
]


class PairSink(Protocol):
    """Structural type of a result sink — what every join method emits into.

    Exists so the strict-typed modules (kernels, framework, parallel) can
    annotate their ``sink`` parameters without coupling to one concrete
    class; anything with these four methods qualifies, including test
    doubles.
    """

    def add(self, rid: int, sid: int) -> None: ...

    def add_rids(self, rids: Collection[int], sid: int) -> None: ...

    def add_sids(self, rid: int, sids: Collection[int]) -> None: ...

    def add_pairs(self, rids: Collection[int], sids: Collection[int]) -> None: ...

    def __len__(self) -> int: ...


class PairListSink:
    """Materialise every ``(rid, sid)`` pair in emission order.

    The bulk methods (``add_rids`` / ``add_sids`` / ``add_pairs``) exist
    because several algorithms naturally produce one-to-many results (a
    whole rid list against one superset, or one subset against a candidate
    list) or whole batches of independent pairs (one per record in a
    vectorized superstep); emitting them in one call keeps the per-pair
    overhead out of the hot loops of *every* method, so cross-method
    timings stay fair. Array arguments (anything with ``tolist``) are
    normalised to Python ints here, exactly once, so kernels can pass
    numpy arrays straight through and counting sinks never pay for a
    conversion they do not need.
    """

    __slots__ = ("pairs",)

    def __init__(self) -> None:
        self.pairs: List[Tuple[int, int]] = []

    def add(self, rid: int, sid: int) -> None:
        self.pairs.append((rid, sid))

    def add_rids(self, rids: Iterable[int], sid: int) -> None:
        """Emit ``(rid, sid)`` for every rid in ``rids``."""
        to_list = getattr(rids, "tolist", None)
        if to_list is not None:
            rids = to_list()
        self.pairs.extend((rid, sid) for rid in rids)

    def add_sids(self, rid: int, sids: Iterable[int]) -> None:
        """Emit ``(rid, sid)`` for every sid in ``sids``."""
        to_list = getattr(sids, "tolist", None)
        if to_list is not None:
            sids = to_list()
        self.pairs.extend((rid, sid) for sid in sids)

    def add_pairs(self, rids: Iterable[int], sids: Iterable[int]) -> None:
        """Emit ``(rid, sid)`` for every aligned pair in ``rids``/``sids``."""
        to_list = getattr(rids, "tolist", None)
        if to_list is not None:
            rids = to_list()
        to_list = getattr(sids, "tolist", None)
        if to_list is not None:
            sids = to_list()
        self.pairs.extend(zip(rids, sids))

    def __len__(self) -> int:
        return len(self.pairs)

    def sorted_pairs(self) -> List[Tuple[int, int]]:
        """Pairs in canonical ``(rid, sid)`` order, for comparisons in tests."""
        return sorted(self.pairs)


class CountSink:
    """Count results without materialising them."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, rid: int, sid: int) -> None:
        self.count += 1

    def add_rids(self, rids: Collection[int], sid: int) -> None:
        self.count += len(rids)

    def add_sids(self, rid: int, sids: Collection[int]) -> None:
        self.count += len(sids)

    def add_pairs(self, rids: Collection[int], sids: Collection[int]) -> None:
        self.count += len(rids)

    def __len__(self) -> int:
        return self.count


class CallbackSink:
    """Forward each pair to a user callback (streaming consumption)."""

    __slots__ = ("callback", "count")

    def __init__(self, callback: Callable[[int, int], None]) -> None:
        self.callback = callback
        self.count = 0

    def add(self, rid: int, sid: int) -> None:
        self.count += 1
        self.callback(rid, sid)

    def add_rids(self, rids: Collection[int], sid: int) -> None:
        to_list = getattr(rids, "tolist", None)
        if to_list is not None:
            rids = to_list()
        for rid in rids:
            self.add(rid, sid)

    def add_sids(self, rid: int, sids: Collection[int]) -> None:
        to_list = getattr(sids, "tolist", None)
        if to_list is not None:
            sids = to_list()
        for sid in sids:
            self.add(rid, sid)

    def add_pairs(self, rids: Collection[int], sids: Collection[int]) -> None:
        to_list = getattr(rids, "tolist", None)
        if to_list is not None:
            rids = to_list()
        to_list = getattr(sids, "tolist", None)
        if to_list is not None:
            sids = to_list()
        for rid, sid in zip(rids, sids):
            self.add(rid, sid)

    def __len__(self) -> int:
        return self.count


# --------------------------------------------------------------------------
# Execution reports (the supervised parallel join)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AttemptRecord:
    """One dispatch of one chunk: where it ran and how it ended.

    ``mode`` is the index-payload path the attempt used — ``"shm"``,
    ``"fork"``, ``"pickle"``, ``"none"`` (no shared index), ``"direct"``
    (in-process fast path), ``"local"`` (the in-process degradation
    fallback), ``"shard"`` (dispatched to a shard node, see
    :mod:`repro.core.shard`) or ``"checkpoint"`` (the result was loaded
    from a verified spill, not computed). ``outcome`` is ``"ok"``,
    ``"error"`` (worker raised), ``"crash"`` (worker died without a
    result), ``"timeout"`` (killed at the ``task_timeout`` deadline),
    ``"resumed"`` (settled from the checkpoint with ``number=0`` and zero
    duration) or ``"superseded"`` (a duplicate shard dispatch that lost
    the first-settle-wins race — its result, if any, was discarded).

    ``shard`` is the shard-node id the attempt ran on (sharded runs only).
    """

    number: int
    mode: str
    outcome: str
    duration: float
    error: Optional[str] = None
    shard: Optional[int] = None


@dataclass
class ChunkReport:
    """Everything that happened to one chunk of ``R``."""

    chunk: int
    size: int
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].outcome in ("ok", "resumed")

    @property
    def retries(self) -> int:
        """Dispatches beyond the first (the supervision overhead paid)."""
        return max(0, len(self.attempts) - 1)

    @property
    def final_mode(self) -> str:
        return self.attempts[-1].mode if self.attempts else "none"

    @property
    def wall_clock(self) -> float:
        """Seconds spent on this chunk across all attempts (incl. failed)."""
        return sum(a.duration for a in self.attempts)


@dataclass
class ShardReport:
    """One shard node's history across a sharded run (all incarnations).

    ``incarnations`` counts processes spawned under this shard id (1 for a
    shard that never died); ``deaths`` counts hard exits *detected* —
    EOF/exit-code crashes and heartbeat-miss kills alike — so
    ``incarnations == deaths`` means the shard was dead at run end and
    ``incarnations == deaths + 1`` means its last incarnation survived.
    ``settled`` lists the chunk ids this shard won, in settle order.
    """

    shard: int
    incarnations: int = 1
    settled: List[int] = field(default_factory=list)
    deaths: int = 0
    heartbeat_misses: int = 0
    last_error: Optional[str] = None


@dataclass
class JoinReport:
    """Structured account of a supervised :func:`parallel_join` run.

    Returned alongside the pairs with ``return_report=True``: per-chunk
    attempts with outcomes and wall-clock, plus every degradation step the
    supervisor took (payload downgrades, in-process fallbacks). A report
    with ``total_retries == 0`` and no ``degradations`` is a clean run.
    """

    chunks: List[ChunkReport] = field(default_factory=list)
    degradations: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    workers: int = 1
    fault_plan: Optional[str] = None
    #: Durable-run provenance (``checkpoint_dir=``): chunk ids settled from
    #: verified spills, chunk ids whose spill was torn/corrupt and had to be
    #: re-executed, and the checkpoint directory itself.
    resumed_chunks: List[int] = field(default_factory=list)
    reexecuted_chunks: List[int] = field(default_factory=list)
    checkpoint_dir: Optional[str] = None
    #: Sharded-run provenance (``shards=``): one :class:`ShardReport` per
    #: shard id, chunk ids that received a speculative duplicate dispatch,
    #: the subset of those the *speculative* attempt won, and how many dead
    #: shard incarnations were respawned.
    shards: List["ShardReport"] = field(default_factory=list)
    speculated_chunks: List[int] = field(default_factory=list)
    speculation_wins: List[int] = field(default_factory=list)
    shard_restarts: int = 0

    @property
    def total_attempts(self) -> int:
        return sum(len(c.attempts) for c in self.chunks)

    @property
    def total_retries(self) -> int:
        return sum(c.retries for c in self.chunks)

    @property
    def fallbacks(self) -> int:
        """Chunks that ended on the in-process degradation path."""
        return sum(1 for c in self.chunks if c.final_mode == "local")

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.chunks)

    def chunk(self, chunk_id: int) -> ChunkReport:
        """The report for one chunk id (chunks are listed in id order)."""
        return self.chunks[chunk_id]

    def summary(self) -> str:
        """Multi-line human-readable rendering (used by the CLI)."""
        lines = [
            f"chunks={len(self.chunks)} workers={self.workers} "
            f"attempts={self.total_attempts} retries={self.total_retries} "
            f"fallbacks={self.fallbacks} elapsed={self.elapsed_seconds:.3f}s"
        ]
        if self.fault_plan:
            lines.append(f"fault plan: {self.fault_plan}")
        if self.shards:
            lines.append(
                f"shards={len(self.shards)} restarts={self.shard_restarts} "
                f"speculated={len(self.speculated_chunks)} "
                f"speculation_wins={len(self.speculation_wins)}"
            )
            for s in self.shards:
                state = "dead" if s.deaths >= s.incarnations else "alive"
                lines.append(
                    f"  shard {s.shard}: incarnations={s.incarnations} "
                    f"deaths={s.deaths} settled={len(s.settled)} [{state}]"
                    + (f" last_error={s.last_error}" if s.last_error else "")
                )
        if self.checkpoint_dir is not None:
            lines.append(
                f"checkpoint: {self.checkpoint_dir} "
                f"resumed={len(self.resumed_chunks)} "
                f"re-executed={len(self.reexecuted_chunks)}"
            )
        for c in self.chunks:
            trail = " -> ".join(
                f"{a.mode}:{a.outcome}" for a in c.attempts
            )
            lines.append(
                f"  chunk {c.chunk} ({c.size} sets, {c.wall_clock:.3f}s): {trail}"
            )
        for note in self.degradations:
            lines.append(f"  degraded: {note}")
        return "\n".join(lines)


def make_sink(
    collect: str = "pairs",
    callback: Optional[Callable[[int, int], None]] = None,
) -> Union[PairListSink, CountSink, CallbackSink]:
    """Factory used by the public API: ``"pairs"``, ``"count"`` or ``"callback"``.

    Raises :class:`~repro.errors.InvalidParameterError` (a ``ValueError``
    subclass, so existing ``except ValueError`` callers keep working) —
    this factory sits under ``set_containment_join``, whose exception
    contract is the ``errors.py`` hierarchy.
    """
    if collect == "pairs":
        return PairListSink()
    if collect == "count":
        return CountSink()
    if collect == "callback":
        if callback is None:
            raise InvalidParameterError("collect='callback' requires a callback")
        return CallbackSink(callback)
    raise InvalidParameterError(f"unknown collect mode {collect!r}")
