"""Result sinks.

On skewed inputs a containment join's output can be far larger than its
input (every small set joins with thousands of supersets), and the paper's
TWITTER preprocessing ("removed the sets with more than 5000 elements to
keep the number of results reasonable") exists precisely because of that.
Materialising every pair is therefore a *choice*, not a given — benchmarks
usually only need the count.

All algorithms emit through a sink with a single ``add(rid, sid)`` method;
three implementations cover the practical cases.
"""

from __future__ import annotations

from typing import Callable, Collection, Iterable, List, Optional, Protocol, Tuple, Union

__all__ = [
    "PairSink",
    "PairListSink",
    "CountSink",
    "CallbackSink",
    "make_sink",
]


class PairSink(Protocol):
    """Structural type of a result sink — what every join method emits into.

    Exists so the strict-typed modules (kernels, framework, parallel) can
    annotate their ``sink`` parameters without coupling to one concrete
    class; anything with these four methods qualifies, including test
    doubles.
    """

    def add(self, rid: int, sid: int) -> None: ...

    def add_rids(self, rids: Collection[int], sid: int) -> None: ...

    def add_sids(self, rid: int, sids: Collection[int]) -> None: ...

    def __len__(self) -> int: ...


class PairListSink:
    """Materialise every ``(rid, sid)`` pair in emission order.

    The bulk methods (``add_rids`` / ``add_sids``) exist because several
    algorithms naturally produce one-to-many results (a whole rid list
    against one superset, or one subset against a candidate list); emitting
    them in one call keeps the per-pair overhead out of the hot loops of
    *every* method, so cross-method timings stay fair.
    """

    __slots__ = ("pairs",)

    def __init__(self) -> None:
        self.pairs: List[Tuple[int, int]] = []

    def add(self, rid: int, sid: int) -> None:
        self.pairs.append((rid, sid))

    def add_rids(self, rids: Iterable[int], sid: int) -> None:
        """Emit ``(rid, sid)`` for every rid in ``rids``."""
        self.pairs.extend((rid, sid) for rid in rids)

    def add_sids(self, rid: int, sids: Iterable[int]) -> None:
        """Emit ``(rid, sid)`` for every sid in ``sids``."""
        self.pairs.extend((rid, sid) for sid in sids)

    def __len__(self) -> int:
        return len(self.pairs)

    def sorted_pairs(self) -> List[Tuple[int, int]]:
        """Pairs in canonical ``(rid, sid)`` order, for comparisons in tests."""
        return sorted(self.pairs)


class CountSink:
    """Count results without materialising them."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, rid: int, sid: int) -> None:
        self.count += 1

    def add_rids(self, rids: Collection[int], sid: int) -> None:
        self.count += len(rids)

    def add_sids(self, rid: int, sids: Collection[int]) -> None:
        self.count += len(sids)

    def __len__(self) -> int:
        return self.count


class CallbackSink:
    """Forward each pair to a user callback (streaming consumption)."""

    __slots__ = ("callback", "count")

    def __init__(self, callback: Callable[[int, int], None]) -> None:
        self.callback = callback
        self.count = 0

    def add(self, rid: int, sid: int) -> None:
        self.count += 1
        self.callback(rid, sid)

    def add_rids(self, rids: Collection[int], sid: int) -> None:
        for rid in rids:
            self.add(rid, sid)

    def add_sids(self, rid: int, sids: Collection[int]) -> None:
        for sid in sids:
            self.add(rid, sid)

    def __len__(self) -> int:
        return self.count


def make_sink(
    collect: str = "pairs",
    callback: Optional[Callable[[int, int], None]] = None,
) -> Union[PairListSink, CountSink, CallbackSink]:
    """Factory used by the public API: ``"pairs"``, ``"count"`` or ``"callback"``."""
    if collect == "pairs":
        return PairListSink()
    if collect == "count":
        return CountSink()
    if collect == "callback":
        if callback is None:
            raise ValueError("collect='callback' requires a callback")
        return CallbackSink(callback)
    raise ValueError(f"unknown collect mode {collect!r}")
