"""Out-of-core (blocked) containment joins.

When the superset side is too large for one in-memory index, split ``S``
into blocks, index one block at a time, and run any in-memory method per
block — the containment join distributes over unions of ``S`` exactly as
it does over ``R``::

    R ⋈⊆ (S₁ ∪ S₂) = (R ⋈⊆ S₁) ∪ (R ⋈⊆ S₂)      (with sid offsets)

:func:`blocked_join` takes ``S`` as any iterable of records (a generator
reading a file qualifies), so the full superset collection never needs to
exist in memory; :func:`iter_blocks` is the standalone chunker. Sid
remapping is by running offset, so results are identical to the one-shot
join.

This is the macro-level block-nested-loop shape of Mamoulis' BNL applied
to *any* inner method, LCJoin included.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from .api import set_containment_join
from .stats import JoinStats

__all__ = ["blocked_join", "iter_blocks"]


def iter_blocks(
    records: Iterable[Sequence[int]], block_size: int
) -> Iterator[SetCollection]:
    """Chunk a record stream into :class:`SetCollection` blocks."""
    if block_size < 1:
        raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
    buffer: List[Sequence[int]] = []
    for record in records:
        buffer.append(record)
        if len(buffer) == block_size:
            yield SetCollection(buffer)
            buffer = []
    if buffer:
        yield SetCollection(buffer)


def blocked_join(
    r_collection: SetCollection,
    s_records: Iterable[Sequence[int]],
    block_size: int = 10_000,
    method: str = "lcjoin",
    stats: Optional[JoinStats] = None,
    **kwargs,
) -> List[Tuple[int, int]]:
    """Join ``R`` against a streamed ``S``, one block at a time.

    ``s_records`` may be any iterable of integer records — pass
    ``repro.data.io.iter_lines`` parsing for file-backed data. Returns the
    pair list with sids referring to the stream order. Per-block stats are
    merged into ``stats`` when given.
    """
    out: List[Tuple[int, int]] = []
    offset = 0
    for block in iter_blocks(s_records, block_size):
        block_stats = JoinStats() if stats is not None else None
        pairs = set_containment_join(
            r_collection, block, method=method, stats=block_stats, **kwargs
        )
        for rid, sid in pairs:
            out.append((rid, offset + sid))
        offset += len(block)
        if stats is not None:
            stats.merge(block_stats)
    return out
