"""Cost counters shared by every join implementation.

The paper's evaluation is wall-clock on a 20-core C++ testbed. A pure-Python
reproduction cannot match absolute times, so alongside wall-clock we meter
**abstract costs** that are hardware-independent and map directly onto the
paper's cost model (§III-B):

* ``binary_searches`` — probes into inverted lists (the dominant term
  ``x·Σ_R Σ_e log|I[e]|``);
* ``entries_touched`` — postings materialised or compared (rip-cutting
  baselines pay this linearly; cross-cutting skips it);
* ``candidates`` — pairs that reached verification (union-oriented and
  signature methods);
* ``rounds`` — specific-set iterations of the cross-cutting loop;
* ``index_build_tokens`` — ``Σ|S|`` index construction work, including local
  index rebuilds in the partitioned methods.

Counters are plain ints on ``__slots__`` so incrementing them in hot loops is
as cheap as Python allows; pass ``stats=None`` to skip metering entirely
(every algorithm treats the ``None`` case with a dedicated fast path).

When an observability registry (:mod:`repro.obs`) is active, every field
of a run's ``JoinStats`` is mirrored under the ``join.<field>`` counter
family by :func:`repro.core.api.set_containment_join` — that flush is the
*only* writer of those counters, and :meth:`JoinStats.from_registry`
reads them back as a stats object, so the two counter systems are views
of one source of truth and cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only (obs never imports core)
    from ..obs.registry import MetricsRegistry

__all__ = ["JoinStats", "REGISTRY_PREFIX"]

#: Namespace of the JoinStats mirror counters in a metrics registry.
REGISTRY_PREFIX = "join."


class JoinStats:
    """Mutable cost-counter bundle attached to a single join run."""

    __slots__ = (
        "binary_searches",
        "entries_touched",
        "candidates",
        "results",
        "rounds",
        "index_build_tokens",
        "tree_nodes",
        "partitions_local",
        "partitions_global",
        "elapsed_seconds",
        "peak_memory_bytes",
    )

    def __init__(self) -> None:
        self.binary_searches = 0
        self.entries_touched = 0
        self.candidates = 0
        self.results = 0
        self.rounds = 0
        self.index_build_tokens = 0
        self.tree_nodes = 0
        self.partitions_local = 0
        self.partitions_global = 0
        self.elapsed_seconds = 0.0
        self.peak_memory_bytes = 0

    def as_dict(self) -> Dict[str, float]:
        """All counters as a plain dict (for reports and tests)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_registry(cls, registry: "MetricsRegistry") -> "JoinStats":
        """The thin view over a metrics registry's ``join.*`` family.

        Reconstructs a ``JoinStats`` from the mirrored counters (gauges
        for ``peak_memory_bytes``), so registry consumers and ``stats=``
        consumers read the same numbers by construction.
        """
        stats = cls()
        for name in cls.__slots__:
            value = registry.value(REGISTRY_PREFIX + name)
            if name == "elapsed_seconds":
                stats.elapsed_seconds = float(value)
            else:
                setattr(stats, name, int(value))
        return stats

    def merge(self, other: "JoinStats") -> None:
        """Accumulate another run's counters into this one."""
        for name in self.__slots__:
            if name == "peak_memory_bytes":
                self.peak_memory_bytes = max(self.peak_memory_bytes, other.peak_memory_bytes)
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    def abstract_cost(self) -> int:
        """Single-number cost proxy: probes plus postings touched plus builds.

        Used by the adaptive partition processor (§V-B) to compare "process
        with the global index" against "build a local index and process with
        it" in hardware-independent units.
        """
        return self.binary_searches + self.entries_touched + self.index_build_tokens

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"JoinStats({parts})"


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of a :class:`JoinStats`, for before/after comparisons."""

    values: Dict[str, float]

    @classmethod
    def of(cls, stats: JoinStats) -> "StatsSnapshot":
        return cls(stats.as_dict())

    def delta(self, stats: JoinStats) -> Dict[str, float]:
        """Counter increments since this snapshot was taken."""
        return {k: getattr(stats, k) - v for k, v in self.values.items()}
