"""Sharded scale-out execution: N independent nodes under one coordinator.

:func:`repro.core.parallel.parallel_join` with ``workers=`` runs a pool of
short-lived processes hanging off one driver, sharing the superset-side
index through shared memory. That model scales a single machine but not a
*failure domain*: every worker shares the driver's memory image, one index
build, and one /dev/shm segment. ``shards=`` replaces it with the model of
the Filter-and-Verification-Tree MapReduce line of work — chunks promoted
to jobs on **processes-as-nodes**:

* each shard node is a long-lived process that builds **its own** index
  copy (:func:`~repro.core.parallel.build_method_index`) — no cross-shard
  shared memory, so nothing a dying shard holds can corrupt a survivor;
* nodes run one chunk at a time and report over a duplex pipe; a
  background thread sends **heartbeats** every
  :attr:`ShardPolicy.heartbeat_interval` seconds (including during the
  index build), so a node that is alive-but-wedged is distinguishable
  from one that is merely slow;
* the coordinator detects a dead node three ways — pipe EOF, the process
  sentinel, or :attr:`ShardPolicy.heartbeat_miss_limit` missed heartbeats
  — **requeues** its unsettled chunk onto the survivors with the same
  capped exponential backoff the supervisor uses, and **respawns** the
  node (a fresh incarnation) while the restart budget lasts, degrading to
  fewer shards once it is spent;
* once :attr:`ShardPolicy.speculation_quorum` chunks have settled, the
  coordinator keeps a runtime quantile; a chunk in flight for more than
  ``max(speculation_min_seconds, speculation_factor × quantile)`` gets one
  **speculative** duplicate dispatch on an idle node. First settle wins;
  the loser is recorded as ``superseded`` and its late result (if it ever
  arrives) is discarded by chunk id, so the merged pair set is exactly the
  serial one no matter which twin won.

Chunks are idempotent and union-decomposable (``R ⋈⊆ S = ∪ᵢ Rᵢ ⋈⊆ S``),
which is what makes all of this safe: re-running, duplicating, or
re-homing a chunk can change *where* work happens but never *what* the
merged result is. Durability composes for free — the coordinator streams
settled chunks through the same ``on_result`` hook the supervisor uses, so
``checkpoint_dir=`` spills them through :mod:`repro.core.runlog` and a
killed coordinator resumes a sharded run exactly like a killed driver
resumes a pooled one.

Fault injection: the ``shard`` stage of :mod:`repro.faults`
(``shard:<id>:kill|hang|slow[@prob][=arg]``) fires in the node at job
pickup — ``kill`` hard-exits the process, ``hang`` silences heartbeats and
sleeps (caught by miss detection), ``slow`` sleeps while still beating
(caught by speculation). Task-stage rules (``crash``/``hang``/``raise``)
fire per chunk attempt as in pool mode.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
import time
import warnings
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..data.collection import SetCollection
from ..errors import (
    DeadlineExceededError,
    DegradedExecutionWarning,
    InvalidParameterError,
    JoinCancelledError,
    WorkerFailedError,
)
from ..faults import (
    CRASH_EXIT_CODE,
    DEFAULT_HANG_SECONDS,
    DEFAULT_SLOW_SECONDS,
    FaultPlan,
)
from ..obs.registry import active_or_null
from ..obs.spans import trace_span
from .results import AttemptRecord, ChunkReport, JoinReport, ShardReport
from .runlog import CancelToken
from .supervisor import interruptible_wait

__all__ = ["ShardCoordinator", "ShardPolicy"]

#: Grace period between SIGTERM and SIGKILL when putting a node down.
_KILL_GRACE = 1.0

#: A job tuple as consumed by ``repro.core.parallel._join_chunk``.
_Job = Tuple[Any, ...]
_Pairs = List[Tuple[int, int]]
_Runner = Callable[[_Job], _Pairs]
_JobFactory = Callable[[int, str], _Job]
_RidMap = Union[int, List[int]]


@dataclass(frozen=True)
class ShardPolicy:
    """Tunable thresholds of the coordinator's robustness machinery.

    The defaults suit real workloads (sub-second heartbeats, speculation
    only for chunks 4× slower than the pack); the chaos tests shrink them
    to keep wall-clock down. ``restart_budget=None`` allows one respawn
    per shard — enough to absorb one hard failure per node without letting
    a deterministic crasher respawn forever.
    """

    #: Seconds between a node's heartbeats (sent even during index build).
    heartbeat_interval: float = 0.2
    #: Consecutive missed intervals before a silent node is declared dead.
    heartbeat_miss_limit: int = 10
    #: Settled chunks required before the runtime quantile is trusted.
    speculation_quorum: int = 3
    #: A chunk is a straggler past ``factor × quantile`` seconds in flight.
    speculation_factor: float = 4.0
    #: ...but never before this many seconds, whatever the quantile says.
    speculation_min_seconds: float = 1.0
    #: Which runtime quantile anchors the straggler threshold.
    speculation_quantile: float = 0.75
    #: Dead-shard respawns allowed across the run (``None`` → one per shard).
    restart_budget: Optional[int] = None
    #: Fresh runs split R into ``shards × chunks_per_shard`` chunks, so a
    #: dead shard requeues a slice of its work, not all of it.
    chunks_per_shard: int = 4

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise InvalidParameterError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.heartbeat_miss_limit < 1:
            raise InvalidParameterError(
                f"heartbeat_miss_limit must be >= 1, got {self.heartbeat_miss_limit}"
            )
        if self.speculation_quorum < 1:
            raise InvalidParameterError(
                f"speculation_quorum must be >= 1, got {self.speculation_quorum}"
            )
        if self.speculation_factor <= 0 or self.speculation_min_seconds < 0:
            raise InvalidParameterError(
                "speculation_factor must be positive and "
                "speculation_min_seconds non-negative"
            )
        if not 0.0 <= self.speculation_quantile <= 1.0:
            raise InvalidParameterError(
                f"speculation_quantile must be in [0, 1], "
                f"got {self.speculation_quantile}"
            )
        if self.restart_budget is not None and self.restart_budget < 0:
            raise InvalidParameterError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.chunks_per_shard < 1:
            raise InvalidParameterError(
                f"chunks_per_shard must be >= 1, got {self.chunks_per_shard}"
            )


def _shard_main(
    conn: Connection,
    shard_id: int,
    incarnation: int,
    s_collection: SetCollection,
    method: str,
    backend: str,
    extra: Dict[str, Any],
    kwargs: Dict[str, Any],
    plan: Optional[FaultPlan],
    heartbeat_interval: float,
) -> None:
    """Shard-node entry: build an index, then serve jobs until told to stop.

    The heartbeat thread starts *before* the index build so a node working
    through a large S never looks dead to the coordinator. ``conn`` is
    duplex and shared between the job loop and the heartbeat thread, so
    every send goes through one lock.

    Orphan detection cannot rely on pipe EOF alone: under the fork start
    method every later-spawned sibling (and this process itself) inherits
    a copy of the coordinator-side pipe end, so a hard-killed coordinator
    (SIGKILL, ``driverkill``) leaves the pipe technically open and a naive
    ``recv`` blocks forever. The job loop therefore waits on the parent's
    process sentinel alongside the pipe and exits as soon as the
    coordinator is gone with nothing left buffered — an orphaned shard
    must not keep serving a dead master.
    """
    stop_beats = threading.Event()
    beats_enabled = threading.Event()
    beats_enabled.set()
    send_lock = threading.Lock()

    def _beat() -> None:
        seq = 0
        while not stop_beats.wait(heartbeat_interval):
            if not beats_enabled.is_set():
                continue
            seq += 1
            try:
                with send_lock:
                    conn.send(("hb", seq))
            except OSError:
                return

    beat_thread = threading.Thread(target=_beat, daemon=True)
    beat_thread.start()
    # Per-node index build: sharded execution shares no memory across
    # nodes, so each one pays (and owns) its own superset-side structures.
    # Import here, not at module top, purely for the runtime cycle with
    # parallel.py; the symbol lives there because the driver shares it.
    from .parallel import _join_chunk, build_method_index

    index = build_method_index(s_collection, method, backend)
    parent = multiprocessing.parent_process()
    handles: List[Any] = [conn]
    if parent is not None:
        handles.append(parent.sentinel)
    try:
        while True:
            if conn not in wait(handles):
                return  # coordinator died with nothing buffered for us
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            __, chunk_id, attempt, rid_map, piece = message
            if plan is not None:
                rule = plan.rule_for_shard(shard_id, incarnation, chunk_id)
                if rule is not None:
                    if rule.action == "kill":
                        os._exit(CRASH_EXIT_CODE)
                    elif rule.action == "hang":
                        # A wedged node: heartbeats stop too, so only the
                        # coordinator's miss detection can catch it.
                        beats_enabled.clear()
                        time.sleep(
                            rule.arg if rule.arg is not None else DEFAULT_HANG_SECONDS
                        )
                        beats_enabled.set()
                    else:  # "slow" — a straggler that still heartbeats
                        time.sleep(
                            rule.arg if rule.arg is not None else DEFAULT_SLOW_SECONDS
                        )
            try:
                if plan is not None:
                    plan.fire_worker_start(chunk_id, attempt)
                job: _Job = (
                    rid_map, piece, s_collection, method, backend,
                    ("direct", index) if index is not None else None,
                    extra, kwargs,
                )
                pairs = _join_chunk(job)
            except BaseException as exc:  # noqa: B036 - forwarded, not swallowed
                try:
                    with send_lock:
                        conn.send(
                            ("err", chunk_id, attempt, type(exc).__name__, str(exc))
                        )
                except OSError:
                    return
                continue
            try:
                with send_lock:
                    conn.send(("done", chunk_id, attempt, pairs))
            except OSError:
                return
    finally:
        stop_beats.set()


class _Assignment:
    """One dispatch of one chunk to one shard incarnation."""

    __slots__ = ("chunk_id", "attempt", "shard_id", "started", "speculative",
                 "superseded")

    def __init__(
        self,
        chunk_id: int,
        attempt: int,
        shard_id: int,
        started: float,
        speculative: bool,
    ) -> None:
        self.chunk_id = chunk_id
        self.attempt = attempt
        self.shard_id = shard_id
        self.started = started
        self.speculative = speculative
        self.superseded = False


class _ChunkState:
    """Coordinator-side lifecycle of one chunk across shards and attempts."""

    __slots__ = ("chunk_id", "attempts", "ready_at", "inflight", "speculated",
                 "last_error", "last_outcome")

    def __init__(self, chunk_id: int) -> None:
        self.chunk_id = chunk_id
        self.attempts = 0
        self.ready_at = 0.0
        self.inflight: List[_Assignment] = []
        self.speculated = False
        self.last_error = ""
        self.last_outcome = ""


class _Node:
    """Parent-side handle of one shard id across its incarnations."""

    __slots__ = ("shard_id", "process", "conn", "incarnation", "last_beat",
                 "busy", "alive", "respawn_at", "report")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.process: Optional[multiprocessing.Process] = None
        self.conn: Optional[Connection] = None
        self.incarnation = 0
        self.last_beat = 0.0
        self.busy: Optional[_Assignment] = None
        self.alive = False
        self.respawn_at = 0.0
        self.report = ShardReport(shard=shard_id, incarnations=0)


class ShardCoordinator:
    """Assign chunks to shard nodes; survive stragglers and dead shards.

    The constructor mirrors :class:`~repro.core.supervisor.Supervisor`
    where the concepts coincide (``retries``/``backoff``/``fallback``/
    ``on_result``/``cancel``/``deadline_mark``/``completed``); the
    shard-specific knobs live in :class:`ShardPolicy`. ``make_job`` and
    ``runner`` are only used for the in-process ``local`` degradation
    terminus — regular dispatches ship ``(rid_map, piece)`` to a node over
    its pipe and the node builds everything else itself.
    """

    def __init__(
        self,
        chunks: List[Tuple[_RidMap, SetCollection]],
        s_collection: SetCollection,
        method: str,
        backend: str,
        extra: Dict[str, Any],
        kwargs: Dict[str, Any],
        shards: int,
        policy: ShardPolicy,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        fallback: bool = True,
        plan: Optional[FaultPlan] = None,
        make_job: Optional[_JobFactory] = None,
        runner: Optional[_Runner] = None,
        on_result: Optional[Callable[[int, int, _Pairs], None]] = None,
        cancel: Optional[CancelToken] = None,
        deadline_mark: Optional[float] = None,
        completed: Optional[Dict[int, _Pairs]] = None,
    ) -> None:
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise InvalidParameterError(f"backoff must be >= 0, got {backoff}")
        self._chunks = chunks
        self._s_collection = s_collection
        self._method = method
        self._backend = backend
        self._extra = extra
        self._kwargs = kwargs
        self._shards = shards
        self._policy = policy
        self._retries = retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._fallback = fallback
        self._plan = plan
        self._make_job = make_job
        self._runner = runner
        self._on_result = on_result
        self._cancel = cancel
        self._deadline_mark = deadline_mark
        self._metrics = active_or_null()
        self._mp = multiprocessing.get_context()
        self._nodes = [_Node(shard_id) for shard_id in range(shards)]
        self._states = [_ChunkState(i) for i in range(len(chunks))]
        self._pending: List[_ChunkState] = []
        self._results: Dict[int, _Pairs] = {}
        self._durations: List[float] = []
        self._restarts_used = 0
        budget = policy.restart_budget
        self._restart_budget = budget if budget is not None else shards
        self.report = JoinReport(
            chunks=[
                ChunkReport(chunk=i, size=len(piece))
                for i, (__, piece) in enumerate(chunks)
            ],
            workers=shards,
            fault_plan=plan.describe() if plan is not None else None,
        )
        for chunk_id, pairs in (completed or {}).items():
            self._results[chunk_id] = pairs
            self.report.chunks[chunk_id].attempts.append(
                AttemptRecord(
                    number=0, mode="checkpoint", outcome="resumed", duration=0.0
                )
            )
            self.report.resumed_chunks.append(chunk_id)
        self.report.resumed_chunks.sort()
        self._pending = [
            state for state in self._states if state.chunk_id not in self._results
        ]

    # -- public entry ------------------------------------------------------

    def run(self) -> Dict[int, _Pairs]:
        """Drive every chunk to settlement; returns results by chunk id."""
        start = time.perf_counter()
        try:
            with trace_span("shard.dispatch"):
                now = time.monotonic()
                for node in self._nodes:
                    self._spawn(node, now)
                self._loop()
        finally:
            self._shutdown()
            self.report.shards = [node.report for node in self._nodes]
            self.report.elapsed_seconds += time.perf_counter() - start
        return self._results

    # -- node lifecycle ----------------------------------------------------

    def _spawn(self, node: _Node, now: float) -> None:
        node.incarnation += 1
        node.report.incarnations += 1
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_shard_main,
            args=(
                child_conn,
                node.shard_id,
                node.incarnation,
                self._s_collection,
                self._method,
                self._backend,
                self._extra,
                self._kwargs,
                self._plan,
                self._policy.heartbeat_interval,
            ),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the child end so a dead node turns
        # into EOF on our end instead of a silent stall.
        child_conn.close()
        node.process = process
        node.conn = parent_conn
        node.busy = None
        node.alive = True
        node.last_beat = now

    def _kill(self, process: multiprocessing.Process) -> None:
        process.terminate()
        process.join(_KILL_GRACE)
        if process.is_alive():  # pragma: no cover - SIGTERM normally lands
            process.kill()
            process.join(_KILL_GRACE)

    def _on_death(self, node: _Node, cause: str, now: float) -> None:
        """A node is gone: drain its pipe, requeue its work, plan a respawn."""
        if not node.alive:
            return
        # Results sent just before death are still in the pipe; settling
        # them beats re-executing their chunks.
        self._drain_node(node, now, dying=True)
        node.alive = False
        node.report.deaths += 1
        node.report.last_error = cause
        if node.process is not None:
            if node.process.is_alive():
                self._kill(node.process)
            else:
                node.process.join(_KILL_GRACE)
        if node.conn is not None:
            node.conn.close()
            node.conn = None
        assignment = node.busy
        node.busy = None
        if assignment is not None and not assignment.superseded:
            state = self._states[assignment.chunk_id]
            if assignment.chunk_id not in self._results:
                state.inflight.remove(assignment)
                self._record(
                    state, assignment, "crash", now - assignment.started, cause
                )
                self._chunk_failed(state, "crash", cause, now)
        if self._restarts_used < self._restart_budget:
            delay = min(
                self._backoff * (2 ** (node.report.deaths - 1)), self._backoff_cap
            )
            node.respawn_at = now + delay

    def _respawn_ready(self, now: float) -> None:
        for node in self._nodes:
            if (
                node.alive
                or self._restarts_used >= self._restart_budget
                or now < node.respawn_at
            ):
                continue
            self._restarts_used += 1
            self._metrics.inc("shard.restarts")
            self.report.shard_restarts += 1
            self._degrade(
                f"shard {node.shard_id} died ({node.report.last_error}); "
                f"respawned as incarnation {node.incarnation + 1} "
                f"({self._restart_budget - self._restarts_used} restart(s) left)"
            )
            self._spawn(node, now)

    def _detect_dead(self, now: float) -> None:
        window = (
            self._policy.heartbeat_interval * self._policy.heartbeat_miss_limit
        )
        for node in self._nodes:
            if not node.alive:
                continue
            if node.process is not None and not node.process.is_alive():
                self._on_death(
                    node,
                    f"shard {node.shard_id} died "
                    f"(exit code {node.process.exitcode})",
                    now,
                )
            elif now - node.last_beat > window:
                self._metrics.inc("shard.heartbeat_misses")
                node.report.heartbeat_misses += 1
                self._on_death(
                    node,
                    f"shard {node.shard_id} missed "
                    f"{self._policy.heartbeat_miss_limit} heartbeats "
                    f"(hang suspected)",
                    now,
                )

    # -- dispatch ----------------------------------------------------------

    def _idle_nodes(self) -> List[_Node]:
        return [n for n in self._nodes if n.alive and n.busy is None]

    def _dispatch(
        self, state: _ChunkState, node: _Node, now: float, speculative: bool
    ) -> None:
        state.attempts += 1
        assignment = _Assignment(
            state.chunk_id, state.attempts, node.shard_id, now, speculative
        )
        rid_map, piece = self._chunks[state.chunk_id]
        self._metrics.inc("shard.assigned")
        if speculative:
            state.speculated = True
            self._metrics.inc("shard.speculated")
            self.report.speculated_chunks.append(state.chunk_id)
        state.inflight.append(assignment)
        node.busy = assignment
        try:
            if node.conn is None:
                raise BrokenPipeError("shard connection closed")
            node.conn.send(
                ("job", state.chunk_id, state.attempts, rid_map, piece)
            )
        except (OSError, ValueError):
            # The node died between our liveness check and the send; the
            # death handler requeues this very assignment.
            self._on_death(
                node, f"shard {node.shard_id} pipe closed at dispatch", now
            )

    def _dispatch_ready(self, now: float) -> None:
        idle = self._idle_nodes()
        if not idle:
            return
        ready = [s for s in self._pending if s.ready_at <= now]
        for state, node in zip(ready, idle):
            self._pending.remove(state)
            self._dispatch(state, node, now, speculative=False)

    def _maybe_speculate(self, now: float) -> None:
        threshold = self._speculation_threshold()
        if threshold is None:
            return
        for state in self._states:
            if (
                state.speculated
                or state.chunk_id in self._results
                or len(state.inflight) != 1
                or state.inflight[0].superseded
                or now - state.inflight[0].started < threshold
            ):
                continue
            idle = self._idle_nodes()
            if not idle:
                return
            # Prefer a node other than the straggler's own (always true
            # here — the straggler's node is busy — but make it explicit).
            node = next(
                (n for n in idle if n.shard_id != state.inflight[0].shard_id),
                idle[0],
            )
            self._dispatch(state, node, now, speculative=True)

    def _speculation_threshold(self) -> Optional[float]:
        if len(self._durations) < self._policy.speculation_quorum:
            return None
        ordered = sorted(self._durations)
        rank = min(
            len(ordered) - 1,
            int(self._policy.speculation_quantile * len(ordered)),
        )
        return max(
            self._policy.speculation_min_seconds,
            self._policy.speculation_factor * ordered[rank],
        )

    # -- settlement --------------------------------------------------------

    def _record(
        self,
        state: _ChunkState,
        assignment: _Assignment,
        outcome: str,
        duration: float,
        error: Optional[str] = None,
    ) -> None:
        self.report.chunks[state.chunk_id].attempts.append(
            AttemptRecord(
                number=assignment.attempt,
                mode="shard",
                outcome=outcome,
                duration=duration,
                error=error,
                shard=assignment.shard_id,
            )
        )

    def _settle(
        self, node: _Node, assignment: _Assignment, pairs: _Pairs, now: float
    ) -> None:
        state = self._states[assignment.chunk_id]
        duration = now - assignment.started
        self._durations.append(duration)
        # First settle wins. Losing twins are superseded *now*, before the
        # winner's record, so the chunk trail ends on its single "ok" and
        # a late duplicate result is recognisably stale when it arrives.
        for other in state.inflight:
            if other is not assignment and not other.superseded:
                other.superseded = True
                self._record(
                    state, other, "superseded", now - other.started,
                    "lost the first-settle-wins race",
                )
        state.inflight = []
        self._record(state, assignment, "ok", duration)
        self._results[state.chunk_id] = pairs
        self._metrics.inc("shard.settled")
        node.report.settled.append(state.chunk_id)
        if assignment.speculative:
            self._metrics.inc("shard.speculation_wins")
            self.report.speculation_wins.append(state.chunk_id)
        if self._on_result is not None:
            self._on_result(state.chunk_id, assignment.attempt, pairs)

    def _chunk_failed(
        self, state: _ChunkState, outcome: str, error: str, now: float
    ) -> None:
        state.last_outcome = outcome
        state.last_error = error
        if state.inflight:
            # A twin dispatch is still running; it may yet settle the chunk.
            return
        if state.attempts <= self._retries:
            delay = min(
                self._backoff * (2 ** (state.attempts - 1)), self._backoff_cap
            )
            state.ready_at = now + delay
            self._pending.append(state)
        else:
            self._fallback_chunk(state)

    def _fallback_chunk(self, state: _ChunkState) -> None:
        if not self._fallback:
            raise WorkerFailedError(state.chunk_id, state.attempts, state.last_error)
        self._degrade(
            f"chunk {state.chunk_id}: {state.attempts} shard attempt(s) failed "
            f"({state.last_error}); falling back to in-process python execution"
        )
        self._metrics.inc("supervisor.fallbacks")
        state.attempts += 1
        started = time.monotonic()
        if self._make_job is None or self._runner is None:
            raise WorkerFailedError(
                state.chunk_id, state.attempts, state.last_error
            )  # pragma: no cover - parallel_join always wires both
        pairs = self._runner(self._make_job(state.chunk_id, "local"))
        self.report.chunks[state.chunk_id].attempts.append(
            AttemptRecord(
                number=state.attempts,
                mode="local",
                outcome="ok",
                duration=time.monotonic() - started,
            )
        )
        self._results[state.chunk_id] = pairs
        if self._on_result is not None:
            self._on_result(state.chunk_id, state.attempts, pairs)

    # -- message pump ------------------------------------------------------

    def _drain_node(self, node: _Node, now: float, dying: bool = False) -> None:
        while node.conn is not None:
            try:
                if not node.conn.poll(0):
                    return
                message = node.conn.recv()
            except (EOFError, OSError):
                if not dying:
                    self._on_death(
                        node, f"shard {node.shard_id} pipe EOF", now
                    )
                return
            kind = message[0]
            if kind == "hb":
                node.last_beat = now
                continue
            __, chunk_id, attempt, *rest = message
            assignment = node.busy
            node.busy = None
            node.last_beat = now
            if (
                assignment is None
                or assignment.chunk_id != chunk_id
                or assignment.attempt != attempt
            ):  # pragma: no cover - protocol invariant
                continue
            if assignment.superseded or chunk_id in self._results:
                # The stale twin finally reported; its result is discarded
                # (dedup by chunk id) and the node goes back to the pool.
                continue
            state = self._states[chunk_id]
            if kind == "done":
                self._settle(node, assignment, rest[0], now)
            else:  # "err"
                type_name, text = rest
                error = f"{type_name}: {text}"
                state.inflight.remove(assignment)
                self._record(
                    state, assignment, "error", now - assignment.started, error
                )
                self._chunk_failed(state, "error", error, now)

    def _drain_messages(self, now: float) -> None:
        for node in self._nodes:
            if node.alive:
                self._drain_node(node, now)

    # -- the event loop ----------------------------------------------------

    def _check_abort(self) -> None:
        if self._cancel is not None and self._cancel.cancelled:
            self._metrics.inc("supervisor.cancellations")
            raise JoinCancelledError(
                self._cancel.reason or "cancelled",
                len(self._results),
                len(self._chunks),
            )
        if (
            self._deadline_mark is not None
            and time.monotonic() >= self._deadline_mark
        ):
            self._metrics.inc("supervisor.deadline_aborts")
            raise DeadlineExceededError(
                "overall deadline exceeded", len(self._results), len(self._chunks)
            )

    def _loop(self) -> None:
        while len(self._results) < len(self._chunks):
            self._check_abort()
            now = time.monotonic()
            self._detect_dead(now)
            self._respawn_ready(now)
            self._dispatch_ready(now)
            self._maybe_speculate(now)
            if len(self._results) == len(self._chunks):
                return
            if not any(node.alive for node in self._nodes):
                if self._restarts_used >= self._restart_budget:
                    # Out of shards and out of budget: degradation terminus.
                    self._drain_remaining()
                    return
                # Dead but respawnable: wait out the respawn backoff,
                # waking early on cancel/deadline.
                next_up = min(node.respawn_at for node in self._nodes)
                interruptible_wait(
                    max(0.0, next_up - now), self._cancel, self._deadline_mark
                )
                continue
            self._wait(self._next_wakeup(now))
            self._drain_messages(time.monotonic())

    def _next_wakeup(self, now: float) -> Optional[float]:
        window = (
            self._policy.heartbeat_interval * self._policy.heartbeat_miss_limit
        )
        marks: List[float] = []
        for node in self._nodes:
            if node.alive:
                marks.append(node.last_beat + window)
            elif self._restarts_used < self._restart_budget:
                marks.append(node.respawn_at)
        threshold = self._speculation_threshold()
        if threshold is not None:
            for state in self._states:
                if (
                    not state.speculated
                    and state.chunk_id not in self._results
                    and len(state.inflight) == 1
                ):
                    marks.append(state.inflight[0].started + threshold)
        if any(node.busy is None and node.alive for node in self._nodes):
            marks.extend(s.ready_at for s in self._pending if s.ready_at > now)
        if self._deadline_mark is not None:
            marks.append(self._deadline_mark)
        if not marks:
            return None
        return max(0.0, min(marks) - now)

    def _wait(self, timeout: Optional[float]) -> None:
        handles: List[Any] = []
        for node in self._nodes:
            if node.alive and node.conn is not None:
                handles.append(node.conn)
            if node.alive and node.process is not None:
                handles.append(node.process.sentinel)
        if self._cancel is not None:
            handles.append(self._cancel)
        if handles:
            wait(handles, timeout=timeout)
        elif timeout is not None:
            interruptible_wait(timeout, self._cancel, self._deadline_mark)

    def _drain_remaining(self) -> None:
        """Every shard is gone for good: finish the leftovers in-process."""
        leftovers = [
            state
            for state in self._states
            if state.chunk_id not in self._results
        ]
        self._pending = []
        for state in leftovers:
            if not state.last_error:
                state.last_error = "no live shards remain"
            state.inflight = []
            self._fallback_chunk(state)

    def _degrade(self, note: str) -> None:
        self._metrics.inc("supervisor.degradations")
        self.report.degradations.append(note)
        warnings.warn(note, DegradedExecutionWarning, stacklevel=2)

    # -- teardown ----------------------------------------------------------

    def _shutdown(self) -> None:
        """No node, pipe, or in-flight duplicate may outlive the join."""
        for node in self._nodes:
            if node.conn is not None and node.busy is None:
                # Idle nodes get a polite stop; busy ones (stale twins,
                # injected stragglers) would not read it until their sleep
                # ends, so they are killed outright below.
                with contextlib.suppress(OSError):
                    node.conn.send(("stop",))
            if node.process is not None and node.process.is_alive():
                if node.busy is None:
                    node.process.join(_KILL_GRACE)
                if node.process.is_alive():
                    self._kill(node.process)
            if node.conn is not None:
                node.conn.close()
                node.conn = None
            node.alive = False
