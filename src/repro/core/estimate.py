"""Join-size and cost estimation, plus workload profiling for the planner.

Two sampling estimators a planner (or a user guarding against output
explosions) needs before running a containment join:

* :func:`estimate_result_size` — unbiased estimate of ``|R ⋈⊆ S|`` by
  joining a uniform sample of ``R`` against the full ``S`` (the containment
  join is linear in R-rows, so sampling R and scaling is unbiased);
* :func:`estimate_costs` — per-method abstract-cost estimates extrapolated
  from the same sample, used by :func:`repro.core.planner.choose_method`.

Both return a :class:`JoinEstimate` with the sample size used, so callers
can reason about confidence (relative error shrinks roughly with
``1/sqrt(sample_results)``).

A third, cheaper facility profiles the *element frequency distribution*
of the superset side: :func:`element_frequency_profile` reports the sorted
inverted-list lengths, the top-20% mass (the paper's z-value input, see
:mod:`repro.data.skew`), and a suggested density threshold splitting
elements into bitmap-worthy (dense) and CSR-resident (sparse) lists. The
hybrid index backend (:class:`repro.index.storage.HybridInvertedIndex`)
uses it to pick its representation split automatically, and it is the
documented workload input for cost-based backend planning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from .api import JOIN_METHODS, set_containment_join
from .stats import JoinStats

__all__ = [
    "JoinEstimate",
    "estimate_result_size",
    "estimate_costs",
    "ElementFrequencyProfile",
    "element_frequency_profile",
]

#: A probe into a dense bitmap scans whole uint64 words: lists denser than
#: one posting per word answer almost every probe inside one or two words,
#: sparser lists mostly fall through to the CSR arrays and the bitmap is
#: wasted space. 1/64 — one posting per word on average — is the break-even
#: density the suggested threshold targets.
_DENSE_WORD_BITS = 64
#: Tiny lists never justify a bitmap row even on tiny collections: the row
#: costs ``ceil(num_sets / 64)`` words regardless of how few bits are set.
_MIN_DENSE_LENGTH = 8


@dataclass(frozen=True)
class JoinEstimate:
    """A sampled estimate with its provenance."""

    estimated_results: float
    sample_size: int
    sample_results: int
    scale_factor: float

    def __int__(self) -> int:
        return int(round(self.estimated_results))


def _sample_r(
    r_collection: SetCollection, sample_size: int, seed: int
) -> SetCollection:
    n = len(r_collection)
    if sample_size >= n:
        return r_collection
    rng = random.Random(seed)
    picked = rng.sample(range(n), sample_size)
    return SetCollection(
        (r_collection[i] for i in picked),
        dictionary=r_collection.dictionary,
        validate=False,
    )


def estimate_result_size(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    sample_size: int = 500,
    seed: int = 0,
    method: str = "framework_et",
) -> JoinEstimate:
    """Estimate ``|R ⋈⊆ S|`` from a uniform R-sample.

    ``method`` defaults to the framework (no tree construction, so the
    sample run stays cheap). A self join is assumed when ``s_collection``
    is ``None`` — note the estimate then still counts reflexive pairs, as
    the join itself does.
    """
    if sample_size < 1:
        raise InvalidParameterError(f"sample_size must be >= 1, got {sample_size}")
    s = s_collection if s_collection is not None else r_collection
    n = len(r_collection)
    if n == 0 or len(s) == 0:
        return JoinEstimate(0.0, 0, 0, 1.0)
    sample = _sample_r(r_collection, sample_size, seed)
    count = set_containment_join(sample, s, method=method, collect="count")
    scale = n / len(sample)
    return JoinEstimate(count * scale, len(sample), count, scale)


def estimate_costs(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    methods: Sequence[str] = ("framework_et", "tree_et", "lcjoin", "pretti"),
    sample_size: int = 300,
    seed: int = 0,
) -> Dict[str, float]:
    """Extrapolated abstract cost per method from an R-sample run.

    The fixed index/tree construction cost is *not* scaled (it is paid once
    whatever the R size); only the probing/scanning work scales with
    ``|R|``. Construction-heavy methods are therefore not unfairly
    penalised at large ``|R|``.
    """
    unknown = [m for m in methods if m not in JOIN_METHODS]
    if unknown:
        raise InvalidParameterError(f"unknown methods: {unknown}")
    s = s_collection if s_collection is not None else r_collection
    n = len(r_collection)
    if n == 0 or len(s) == 0:
        return {m: 0.0 for m in methods}
    sample = _sample_r(r_collection, sample_size, seed)
    scale = n / len(sample)
    out: Dict[str, float] = {}
    for method in methods:
        stats = JoinStats()
        set_containment_join(sample, s, method=method, collect="count", stats=stats)
        variable = stats.binary_searches + stats.entries_touched + stats.candidates
        fixed = stats.index_build_tokens
        out[method] = fixed + variable * scale
    return out


@dataclass(frozen=True)
class ElementFrequencyProfile:
    """The element frequency distribution of one collection, summarised.

    ``frequencies`` are the inverted-list lengths sorted descending (zeros
    dropped); ``top_mass`` is the share of all postings held by the most
    frequent 20% of elements — the ``a`` in the paper's 80/20 z-value
    ``z = 1 - log(a)/log(b)``; ``suggested_threshold`` is the minimum list
    length at which a bitmap row beats the CSR arrays (see
    :func:`element_frequency_profile`); ``dense_elements`` counts the lists
    meeting it.
    """

    frequencies: Tuple[int, ...]
    num_sets: int
    total_postings: int
    num_elements: int
    top_mass: float
    suggested_threshold: int
    dense_elements: int

    def top_k_mass(self, k: int) -> float:
        """Share of all postings held by the ``k`` most frequent elements."""
        if k < 0:
            raise InvalidParameterError(f"k must be >= 0, got {k}")
        if self.total_postings == 0:
            return 0.0
        return sum(self.frequencies[:k]) / self.total_postings


def element_frequency_profile(
    data: Union[SetCollection, Sequence[int]],
    num_sets: Optional[int] = None,
) -> ElementFrequencyProfile:
    """Profile element frequencies for representation / backend planning.

    ``data`` is the superset-side collection, or directly its per-element
    frequency counts (inverted-list lengths — the two forms produce the
    same profile, so index builders can pass counts they already have).
    ``num_sets`` — ``|S|``, the bit-width a bitmap row would need — is
    taken from the collection, and must be given with raw counts when the
    longest list does not reach it (the default is ``max(counts)``, a lower
    bound that can only make the suggested threshold smaller).

    The suggested threshold marks the break-even density of a word-packed
    bitmap row: ``max(8, ceil(num_sets / 64))``, i.e. at least one posting
    per uint64 word on average (below that, probes mostly fall through to
    the sorted arrays and the row is dead weight) and never fewer than 8
    postings (a row costs whole words regardless of bits set).
    """
    if isinstance(data, SetCollection):
        counts: Sequence[int] = list(data.element_frequencies().values())
        if num_sets is None:
            num_sets = len(data)
    else:
        counts = list(data)
        if any(c < 0 for c in counts):
            raise InvalidParameterError("frequency counts must be >= 0")
        if num_sets is None:
            num_sets = max(counts, default=0)
    frequencies = tuple(sorted((c for c in counts if c > 0), reverse=True))
    total = sum(frequencies)
    top = max(1, int(len(frequencies) * 0.2 + 0.5)) if frequencies else 0
    top_mass = sum(frequencies[:top]) / total if total else 0.0
    threshold = max(_MIN_DENSE_LENGTH, -(-num_sets // _DENSE_WORD_BITS))
    dense = sum(1 for c in frequencies if c >= threshold)
    return ElementFrequencyProfile(
        frequencies=frequencies,
        num_sets=num_sets,
        total_postings=total,
        num_elements=len(frequencies),
        top_mass=top_mass,
        suggested_threshold=threshold,
        dense_elements=dense,
    )
