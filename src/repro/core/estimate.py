"""Join-size and cost estimation.

Two sampling estimators a planner (or a user guarding against output
explosions) needs before running a containment join:

* :func:`estimate_result_size` — unbiased estimate of ``|R ⋈⊆ S|`` by
  joining a uniform sample of ``R`` against the full ``S`` (the containment
  join is linear in R-rows, so sampling R and scaling is unbiased);
* :func:`estimate_costs` — per-method abstract-cost estimates extrapolated
  from the same sample, used by :func:`repro.core.planner.choose_method`.

Both return a :class:`JoinEstimate` with the sample size used, so callers
can reason about confidence (relative error shrinks roughly with
``1/sqrt(sample_results)``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from .api import JOIN_METHODS, set_containment_join
from .stats import JoinStats

__all__ = ["JoinEstimate", "estimate_result_size", "estimate_costs"]


@dataclass(frozen=True)
class JoinEstimate:
    """A sampled estimate with its provenance."""

    estimated_results: float
    sample_size: int
    sample_results: int
    scale_factor: float

    def __int__(self) -> int:
        return int(round(self.estimated_results))


def _sample_r(
    r_collection: SetCollection, sample_size: int, seed: int
) -> SetCollection:
    n = len(r_collection)
    if sample_size >= n:
        return r_collection
    rng = random.Random(seed)
    picked = rng.sample(range(n), sample_size)
    return SetCollection(
        (r_collection[i] for i in picked),
        dictionary=r_collection.dictionary,
        validate=False,
    )


def estimate_result_size(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    sample_size: int = 500,
    seed: int = 0,
    method: str = "framework_et",
) -> JoinEstimate:
    """Estimate ``|R ⋈⊆ S|`` from a uniform R-sample.

    ``method`` defaults to the framework (no tree construction, so the
    sample run stays cheap). A self join is assumed when ``s_collection``
    is ``None`` — note the estimate then still counts reflexive pairs, as
    the join itself does.
    """
    if sample_size < 1:
        raise InvalidParameterError(f"sample_size must be >= 1, got {sample_size}")
    s = s_collection if s_collection is not None else r_collection
    n = len(r_collection)
    if n == 0 or len(s) == 0:
        return JoinEstimate(0.0, 0, 0, 1.0)
    sample = _sample_r(r_collection, sample_size, seed)
    count = set_containment_join(sample, s, method=method, collect="count")
    scale = n / len(sample)
    return JoinEstimate(count * scale, len(sample), count, scale)


def estimate_costs(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    methods: Sequence[str] = ("framework_et", "tree_et", "lcjoin", "pretti"),
    sample_size: int = 300,
    seed: int = 0,
) -> Dict[str, float]:
    """Extrapolated abstract cost per method from an R-sample run.

    The fixed index/tree construction cost is *not* scaled (it is paid once
    whatever the R size); only the probing/scanning work scales with
    ``|R|``. Construction-heavy methods are therefore not unfairly
    penalised at large ``|R|``.
    """
    unknown = [m for m in methods if m not in JOIN_METHODS]
    if unknown:
        raise InvalidParameterError(f"unknown methods: {unknown}")
    s = s_collection if s_collection is not None else r_collection
    n = len(r_collection)
    if n == 0 or len(s) == 0:
        return {m: 0.0 for m in methods}
    sample = _sample_r(r_collection, sample_size, seed)
    scale = n / len(sample)
    out: Dict[str, float] = {}
    for method in methods:
        stats = JoinStats()
        set_containment_join(sample, s, method=method, collect="count", stats=stats)
        variable = stats.binary_searches + stats.entries_touched + stats.candidates
        fixed = stats.index_build_tokens
        out[method] = fixed + variable * scale
    return out
