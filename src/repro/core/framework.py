"""The cross-cutting framework (paper §III, Algorithm 1) and its
early-termination refinement (§III-C).

For each set ``R``, all of its inverted lists are intersected
*simultaneously*: a single *specific set* candidate ``MaxSid`` is probed in
every list, and the largest *gap* (first entry greater than the candidate)
across the lists becomes the next candidate. Every id strictly between the
old candidate and the new one is absent from at least one list, so the whole
range is skipped in all lists — the titular "cross-cutting".

Early termination (``FrameworkET``): lists are visited in ascending length
order and the round stops at the first list missing the candidate; the next
candidate is the largest gap among the *visited* lists only. Short lists go
first because they have the largest gaps (paper §III-C).

Both variants keep a per-list cursor: candidates only grow within one ``R``,
so each binary search can start from the previous hit position.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..obs import registry as _obs
from ..obs.spans import trace_span
from .stats import JoinStats

if TYPE_CHECKING:  # pragma: no cover - typing-only (storage imports lazily)
    from ..index.storage import CSRInvertedIndex
    from .results import PairSink

#: What the probing methods accept as a prebuilt superset-side index.
IndexLike = Union[InvertedIndex, "CSRInvertedIndex"]

__all__ = ["framework_join", "cross_cut_record"]


def cross_cut_record(
    rid: int,
    lists: Sequence[Sequence[int]],
    first_sid: int,
    inf_sid: int,
    sink: "PairSink",
    early_termination: bool,
    stats: Optional[JoinStats],
) -> None:
    """Run the cross-cutting loop for one ``R`` set.

    ``lists`` are the record's inverted lists; with ``early_termination``
    they must already be sorted by ascending length. ``first_sid`` is the
    initial candidate (the paper's ``S_1``; the smallest id in the index
    universe) and ``inf_sid`` the ``S_∞`` sentinel.
    """
    k = len(lists)
    cursors = [0] * k
    max_sid = first_sid
    searches = 0
    rounds = 0
    matches = 0
    while max_sid < inf_sid:
        rounds += 1
        next_max = -1
        found = True
        for i in range(k):
            lst = lists[i]
            pos = bisect_left(lst, max_sid, cursors[i])
            cursors[i] = pos
            searches += 1
            if pos == len(lst):
                # End of a list reached: no candidate beyond max_sid can be
                # a superset; the paper's outer while-condition fires.
                next_max = inf_sid
                found = False
                if early_termination:
                    break
                continue
            sid = lst[pos]
            if sid == max_sid:
                gap = lst[pos + 1] if pos + 1 < len(lst) else inf_sid
            else:
                found = False
                gap = sid
            if gap > next_max:
                next_max = gap
            if not found and early_termination:
                break
        if found:
            sink.add(rid, max_sid)
            matches += 1
        max_sid = next_max
    if stats is not None:
        stats.binary_searches += searches
        stats.rounds += rounds
    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("probe.records")
        reg.inc("probe.binary_searches", searches)
        reg.inc("probe.rounds", rounds)
        reg.inc("probe.matches", matches)
        # Under early termination every round either completes with a match
        # or breaks out of the list scan, so the break count needs no
        # per-round accumulation in the hot loop.
        if early_termination:
            reg.inc("probe.early_term_breaks", rounds - matches)


def framework_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink: "PairSink",
    early_termination: bool = False,
    index: Optional[IndexLike] = None,
    stats: Optional[JoinStats] = None,
    backend: str = "python",
) -> None:
    """Algorithm 1: the cross-cutting set containment join.

    ``early_termination=True`` gives the paper's ``FrameworkET`` variant.
    Pass a prebuilt ``index`` to amortise index construction across runs
    (the benchmark harness measures it separately).

    ``backend="csr"`` runs the same algorithm on the numpy CSR layout via
    the batched superstep kernel (:mod:`repro.index.kernels`): identical
    pair set, emitted round-major instead of record-major. On that backend
    early termination is subsumed by batch probing (see the kernel module
    docstring), and ``index`` may be a prebuilt
    :class:`~repro.index.storage.CSRInvertedIndex` (a plain
    ``InvertedIndex`` is repacked on the fly). ``backend="hybrid"`` adds
    per-representation probe routing on top — dense lists through bitmap
    rows, sparse lists through the batched gallop — still with the
    identical pair set (a CSR index is promoted in place when passed).
    """
    if backend in ("csr", "hybrid"):
        from ..index.kernels import (
            cross_cut_collection_csr,
            cross_cut_collection_hybrid,
        )
        from ..index.storage import CSRInvertedIndex, HybridInvertedIndex

        want = HybridInvertedIndex if backend == "hybrid" else CSRInvertedIndex
        if index is None:
            with trace_span("index.build"):
                index = want.build(s_collection)
            if stats is not None:
                stats.index_build_tokens += index.construction_cost
        elif isinstance(index, InvertedIndex):
            with trace_span("index.csr_pack"):
                index = want.from_index(index)
        elif backend == "hybrid" and not isinstance(index, HybridInvertedIndex):
            with trace_span("index.hybrid_pack"):
                index = HybridInvertedIndex.from_csr(index)
        with trace_span("probe.loop"):
            if isinstance(index, HybridInvertedIndex):
                cross_cut_collection_hybrid(r_collection, index, sink, stats)
            else:
                cross_cut_collection_csr(r_collection, index, sink, stats)
        return
    if index is None:
        with trace_span("index.build"):
            index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    if not index.universe:
        return
    first_sid = index.universe[0]
    inf_sid = index.inf_sid
    skipped = 0
    with trace_span("probe.loop"):
        for rid, record in enumerate(r_collection):
            lists = index.get_lists(record)
            # A record with an element absent from S has an empty list and can
            # never find a superset; skip it before entering the loop.
            shortest = min(lists, key=len, default=())
            if not shortest:
                skipped += 1
                continue
            if early_termination:
                lists = sorted(lists, key=len)
            cross_cut_record(
                rid, lists, first_sid, inf_sid, sink, early_termination, stats
            )
    reg = _obs.ACTIVE
    if reg is not None and skipped:
        reg.inc("probe.records_skipped", skipped)

