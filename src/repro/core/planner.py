"""Automatic method selection (``method="auto"``).

The paper's own evaluation shows no single configuration wins everywhere:
the framework beats the tree on small inputs (§VI-B), partitioning beats
both once there is data to share (§VI-C), and the adaptive switch exists
precisely because the right index choice is workload-dependent (§V-B).
This module extends that adaptivity one level up: pick the *method* from
cheap workload statistics, with an optional sampling probe for the
undecided middle ground.

Heuristics (in decision order):

1. tiny inputs (``|R|·|S|`` below a threshold) → ``naive``: no structure
   pays for itself;
2. small ``R`` relative to ``S``'s vocabulary (little prefix sharing to
   exploit) → ``framework_et``;
3. otherwise → ``lcjoin`` (tree sharing + partitioning), the paper's
   full method and the right default at scale;
4. with ``probe=True``, the borderline band is resolved by
   :func:`repro.core.estimate.estimate_costs` on a sample instead of by
   rules 2–3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..data.collection import SetCollection
from .estimate import estimate_costs

__all__ = ["PlanDecision", "choose_method"]

#: |R| * |S| below which brute force beats building any index.
NAIVE_CROSS_LIMIT = 2_000

#: Average sets-per-distinct-element in R below which prefix sharing is too
#: thin for the tree to pay off.
SHARING_THRESHOLD = 2.0


@dataclass(frozen=True)
class PlanDecision:
    """The chosen method plus the reasoning, for logs and tests."""

    method: str
    reason: str
    sharing_ratio: float
    cross_product: int


def choose_method(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    probe: bool = False,
    sample_size: int = 300,
) -> PlanDecision:
    """Pick a join method for this workload.

    With ``probe=True``, candidate methods are cost-estimated on an
    R-sample (slower, more reliable); otherwise pure statistics decide.
    """
    s = s_collection if s_collection is not None else r_collection
    cross = len(r_collection) * len(s)
    if cross <= NAIVE_CROSS_LIMIT:
        return PlanDecision("naive", "tiny input: brute force wins", 0.0, cross)

    distinct = len({e for rec in r_collection for e in rec})
    sharing = len(r_collection) / max(distinct, 1)

    if probe:
        costs = estimate_costs(
            r_collection, s,
            methods=("framework_et", "lcjoin"),
            sample_size=sample_size,
        )
        method = min(costs, key=costs.get)
        return PlanDecision(
            method,
            f"sampled costs {': '.join(f'{m}={c:.0f}' for m, c in costs.items())}",
            sharing,
            cross,
        )

    if sharing < SHARING_THRESHOLD:
        return PlanDecision(
            "framework_et",
            f"sharing ratio {sharing:.2f} < {SHARING_THRESHOLD}: "
            "prefix tree would not pay off",
            sharing,
            cross,
        )
    return PlanDecision(
        "lcjoin",
        f"sharing ratio {sharing:.2f}: tree sharing and partitioning pay off",
        sharing,
        cross,
    )
