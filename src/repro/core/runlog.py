"""Durable join runs: write-ahead manifest, chunk spills, resume, cancel.

The supervisor (:mod:`repro.core.supervisor`) makes individual *workers*
survivable; this module makes the *run* survivable. A checkpoint directory
holds:

``MANIFEST.json``
    Written atomically **before** any chunk is dispatched (write-ahead): the
    run id, SHA-256 fingerprints of both input collections, the join
    parameters, and the chunk split. Resume refuses with
    :class:`~repro.errors.ResumeMismatchError` unless all of them match the
    resuming call — spilled pairs are only trusted for the exact join that
    produced them.

``chunk-NNNNN.pairs``
    One spill per settled chunk. Every spill is written through
    :func:`atomic_write_bytes` (write temp → ``fsync`` → ``os.replace`` →
    directory ``fsync``) and carries a header with the chunk id, the pair
    count, and a SHA-256 checksum of the payload, so a torn or tampered
    file is *detected and discarded* on resume rather than silently merged.
    Pairs are spilled with **global** record ids (the supervisor settles
    remapped results), so resumed chunks merge without further translation.

``segments.json``
    The shared-memory segment names of the in-flight run. If the driver is
    killed hard (SIGKILL, ``driverkill``), the segments leak in
    ``/dev/shm``; resume reclaims them before dispatching.

``COMPLETE`` / ``ABORTED``
    Terminal markers. ``ABORTED`` records the reason (cancellation,
    deadline, crash unwind); a resumed run clears it and, on success,
    writes ``COMPLETE``.

Alongside the log sits cooperative cancellation: a :class:`CancelToken`
(a flag plus a self-pipe so ``multiprocessing.connection.wait`` wakes
immediately) and :func:`signal_cancellation`, which routes SIGINT/SIGTERM
into the token for the duration of a run and restores the previous
handlers afterwards.

Fault injection: ``RunLog.record_chunk`` consults the run's
:class:`~repro.faults.FaultPlan` for driver-stage actions — see the
grammar in :mod:`repro.faults` (``driverkill``/``diskfull``/``torn``).

All checkpoint writes must go through :func:`atomic_write_bytes`; the
repro-lint check **RL601** rejects any other write call in this module.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import signal
import threading
import time
import warnings
from dataclasses import asdict, dataclass
from types import FrameType
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..data.collection import SetCollection
from ..errors import (
    CheckpointError,
    DegradedExecutionWarning,
    ResumeMismatchError,
)
from ..faults import CRASH_EXIT_CODE, FaultPlan
from ..obs.registry import active_or_null
from ..obs.spans import trace_span

__all__ = [
    "RunManifest",
    "RunLog",
    "CancelToken",
    "signal_cancellation",
    "collection_fingerprint",
    "atomic_write_bytes",
    "MANIFEST_NAME",
    "COMPLETE_NAME",
    "ABORTED_NAME",
]

MANIFEST_NAME = "MANIFEST.json"
COMPLETE_NAME = "COMPLETE"
ABORTED_NAME = "ABORTED"
SEGMENTS_NAME = "segments.json"
_CHUNK_PREFIX = "chunk-"
_CHUNK_SUFFIX = ".pairs"
_TMP_SUFFIX = ".tmp"
_SPILL_MAGIC = "LCJRL1"
_MANIFEST_FORMAT = 1

Pair = Tuple[int, int]


# -- atomic write protocol -------------------------------------------------


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Durably replace ``path`` with ``payload``: temp → fsync → rename.

    The temp file lives in the same directory (``os.replace`` must not
    cross filesystems), is fsync'd before the rename so the payload is on
    disk before the name points at it, and the directory entry is fsync'd
    after so the rename itself survives a crash. Readers therefore observe
    either the old file or the complete new one — never a prefix.

    This is the *only* sanctioned write path in this module (RL601).
    """
    tmp = path + _TMP_SUFFIX
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)  # lint: atomic-write (this is the helper itself)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# -- fingerprints ----------------------------------------------------------


def collection_fingerprint(collection: SetCollection) -> str:
    """SHA-256 over the collection's records (order- and value-exact).

    Two collections fingerprint equal iff they hold the same records in
    the same order — which is exactly the condition under which chunk ids
    from a previous run name the same work.
    """
    digest = hashlib.sha256()
    digest.update(str(len(collection)).encode("ascii"))
    for record in collection:
        digest.update(b"\n")
        digest.update(",".join(map(str, record)).encode("ascii"))
    return digest.hexdigest()


# -- manifest --------------------------------------------------------------


@dataclass(frozen=True)
class RunManifest:
    """The write-ahead description of one durable join run."""

    run_id: str
    r_fingerprint: str
    s_fingerprint: str
    method: str
    backend: str
    strategy: str
    kwargs_repr: str
    num_chunks: int
    n_records: int
    created: float
    format: int = _MANIFEST_FORMAT

    def to_bytes(self) -> bytes:
        return json.dumps(asdict(self), indent=2, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RunManifest":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"corrupt run manifest: {exc}") from exc
        if not isinstance(data, dict):
            raise CheckpointError("corrupt run manifest: not a JSON object")
        if data.get("format") != _MANIFEST_FORMAT:
            raise CheckpointError(
                f"unsupported manifest format {data.get('format')!r} "
                f"(this build reads format {_MANIFEST_FORMAT})"
            )
        try:
            return cls(
                run_id=str(data["run_id"]),
                r_fingerprint=str(data["r_fingerprint"]),
                s_fingerprint=str(data["s_fingerprint"]),
                method=str(data["method"]),
                backend=str(data["backend"]),
                strategy=str(data["strategy"]),
                kwargs_repr=str(data["kwargs_repr"]),
                num_chunks=int(data["num_chunks"]),
                n_records=int(data["n_records"]),
                created=float(data["created"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"corrupt run manifest: {exc!r}") from exc

    # lint: backend-agnostic (backend here is a recorded manifest string
    # compared for equality, not an array-backend dispatch point)
    def validate(
        self,
        r_fingerprint: str,
        s_fingerprint: str,
        method: str,
        backend: str,
        strategy: str,
        kwargs_repr: str,
        n_records: int,
    ) -> None:
        """Refuse resume unless the manifest describes this exact join."""
        expected = {
            "r_fingerprint": (self.r_fingerprint, r_fingerprint),
            "s_fingerprint": (self.s_fingerprint, s_fingerprint),
            "method": (self.method, method),
            "backend": (self.backend, backend),
            "strategy": (self.strategy, strategy),
            "kwargs": (self.kwargs_repr, kwargs_repr),
            "n_records": (str(self.n_records), str(n_records)),
        }
        mismatched = [
            f"{key} (manifest {old!r} vs current {new!r})"
            for key, (old, new) in expected.items()
            if old != new
        ]
        if mismatched:
            raise ResumeMismatchError(
                "resume refused: checkpoint manifest does not match this "
                "join: " + "; ".join(mismatched)
            )


# -- spill encoding --------------------------------------------------------


def _encode_spill(chunk_id: int, pairs: Sequence[Pair]) -> bytes:
    body = "".join(f"{rid} {sid}\n" for rid, sid in pairs).encode("ascii")
    checksum = hashlib.sha256(body).hexdigest()
    header = f"{_SPILL_MAGIC} {chunk_id} {len(pairs)} {checksum}\n".encode("ascii")
    return header + body


def _decode_spill(raw: bytes, expected_chunk: int) -> List[Pair]:
    """Parse and verify one spill; any defect raises :class:`CheckpointError`."""
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError("spill has no header line")
    fields = raw[:newline].decode("ascii", errors="replace").split()
    if len(fields) != 4 or fields[0] != _SPILL_MAGIC:
        raise CheckpointError("spill header is malformed")
    try:
        chunk_id = int(fields[1])
        count = int(fields[2])
    except ValueError as exc:
        raise CheckpointError(f"spill header is malformed: {exc}") from exc
    if chunk_id != expected_chunk:
        raise CheckpointError(
            f"spill names chunk {chunk_id} but is filed as chunk {expected_chunk}"
        )
    body = raw[newline + 1 :]
    if hashlib.sha256(body).hexdigest() != fields[3]:
        raise CheckpointError("spill checksum mismatch (torn or corrupt write)")
    pairs: List[Pair] = []
    for line in body.splitlines():
        parts = line.split()
        if len(parts) != 2:
            raise CheckpointError("spill payload line is malformed")
        pairs.append((int(parts[0]), int(parts[1])))
    if len(pairs) != count:
        raise CheckpointError(
            f"spill payload holds {len(pairs)} pairs, header promises {count}"
        )
    return pairs


# -- run log ---------------------------------------------------------------


class RunLog:
    """One durable run rooted at a checkpoint directory.

    Construction goes through :meth:`create` (fresh run: refuses to adopt a
    directory that already holds a manifest) or :meth:`open` (resume: reads
    and parses the existing manifest). ``record_chunk`` spills settled
    chunks as they arrive; a spill failure (e.g. disk full) degrades
    checkpointing to *off* with a :class:`DegradedExecutionWarning` instead
    of failing the join — durability is an add-on, not a correctness
    dependency.
    """

    def __init__(
        self,
        directory: str,
        manifest: RunManifest,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.notes: List[str] = []
        self._plan = plan
        self._writable = True

    # -- construction ------------------------------------------------------

    @staticmethod
    def exists(directory: str) -> bool:
        """True when ``directory`` holds a run manifest."""
        return os.path.isfile(os.path.join(directory, MANIFEST_NAME))

    @classmethod
    def create(
        cls,
        directory: str,
        manifest: RunManifest,
        plan: Optional[FaultPlan] = None,
    ) -> "RunLog":
        """Start a fresh run: write the manifest before any dispatch."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(path):
            raise CheckpointError(
                f"checkpoint directory {directory!r} already holds a run "
                "manifest; pass resume=True to continue it, or point the "
                "checkpoint at an empty directory"
            )
        try:
            atomic_write_bytes(path, manifest.to_bytes())
        except OSError as exc:
            raise CheckpointError(
                f"cannot write run manifest in {directory!r}: {exc}"
            ) from exc
        return cls(directory, manifest, plan=plan)

    @classmethod
    def open(cls, directory: str, plan: Optional[FaultPlan] = None) -> "RunLog":
        """Open an existing run for resume."""
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint directory {directory!r} holds no readable run "
                f"manifest: {exc}"
            ) from exc
        return cls(directory, RunManifest.from_bytes(raw), plan=plan)

    # -- paths -------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def chunk_path(self, chunk_id: int) -> str:
        return self._path(f"{_CHUNK_PREFIX}{chunk_id:05d}{_CHUNK_SUFFIX}")

    def is_complete(self) -> bool:
        return os.path.isfile(self._path(COMPLETE_NAME))

    def aborted_reason(self) -> Optional[str]:
        """The recorded ABORTED reason, or ``None`` when not aborted."""
        try:
            with open(self._path(ABORTED_NAME), "rb") as handle:
                return handle.read().decode("utf-8", errors="replace").strip()
        except OSError:
            return None

    # -- spills ------------------------------------------------------------

    def record_chunk(self, chunk_id: int, attempt: int, pairs: Sequence[Pair]) -> None:
        """Durably spill one settled chunk's (global-id) pair list.

        Consults the fault plan for driver-stage actions; a real ``OSError``
        (or an injected ``diskfull``) disables further checkpointing for
        this run and warns, leaving the in-memory join untouched.
        """
        if not self._writable:
            return
        rule = None if self._plan is None else self._plan.rule_for_checkpoint(chunk_id, attempt)
        metrics = active_or_null()
        payload = _encode_spill(chunk_id, pairs)
        path = self.chunk_path(chunk_id)
        try:
            with trace_span("checkpoint.write"):
                if rule is not None and rule.action == "diskfull":
                    raise OSError(28, "No space left on device (injected)")
                if rule is not None and rule.action == "torn":
                    # Model a torn write: a prefix of the payload lands at
                    # the *final* name with no checksum-valid header-body
                    # agreement, then the driver dies. Deliberately bypasses
                    # the atomic protocol — that is the point of the fault.
                    torn = payload[: max(1, len(payload) - max(2, len(payload) // 3))]
                    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)  # lint: atomic-write (deliberately torn: fault injection)
                    try:
                        os.write(fd, torn)
                        os.fsync(fd)
                    finally:
                        os.close(fd)
                    os._exit(CRASH_EXIT_CODE)
                atomic_write_bytes(path, payload)
        except OSError as exc:
            self._writable = False
            metrics.inc("checkpoint.write_errors")
            note = (
                f"checkpoint spill for chunk {chunk_id} failed ({exc}); "
                "checkpointing disabled for the rest of this run"
            )
            self.notes.append(note)
            warnings.warn(note, DegradedExecutionWarning, stacklevel=2)
            return
        metrics.inc("checkpoint.chunks_written")
        metrics.inc("checkpoint.bytes_written", len(payload))
        if rule is not None and rule.action == "driverkill":
            # The spill above is durable; dying *here* is the deterministic
            # "driver crashed between two settles" point for resume tests.
            os._exit(CRASH_EXIT_CODE)

    def load_chunks(self) -> Tuple[Dict[int, List[Pair]], List[int]]:
        """Verified spills plus the chunk ids discarded as torn/corrupt.

        Stray temp files from interrupted atomic writes are removed; any
        spill that fails magic/checksum/count validation is deleted so the
        chunk re-executes. Also clears a stale ABORTED marker — loading is
        the first step of a new attempt at the run.
        """
        metrics = active_or_null()
        completed: Dict[int, List[Pair]] = {}
        discarded: List[int] = []
        with trace_span("checkpoint.resume"):
            for name in sorted(os.listdir(self.directory)):
                path = self._path(name)
                if name.endswith(_TMP_SUFFIX):
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                    continue
                if not (name.startswith(_CHUNK_PREFIX) and name.endswith(_CHUNK_SUFFIX)):
                    continue
                stem = name[len(_CHUNK_PREFIX) : -len(_CHUNK_SUFFIX)]
                try:
                    chunk_id = int(stem)
                except ValueError:
                    chunk_id = -1
                try:
                    if not 0 <= chunk_id < self.manifest.num_chunks:
                        raise CheckpointError(f"spill {name!r} names no known chunk")
                    with open(path, "rb") as handle:
                        completed[chunk_id] = _decode_spill(handle.read(), chunk_id)
                except (CheckpointError, OSError):
                    if chunk_id >= 0:
                        discarded.append(chunk_id)
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                    metrics.inc("checkpoint.chunks_discarded")
            with contextlib.suppress(OSError):
                os.unlink(self._path(ABORTED_NAME))
            metrics.inc("checkpoint.chunks_resumed", len(completed))
        return completed, discarded

    # -- shared-memory bookkeeping ----------------------------------------

    def record_segments(self, names: Sequence[str]) -> None:
        """Persist the run's live shm segment names (best effort)."""
        with contextlib.suppress(OSError):
            atomic_write_bytes(
                self._path(SEGMENTS_NAME),
                json.dumps(sorted(names)).encode("utf-8"),
            )

    def reclaim_stale_segments(self) -> List[str]:
        """Unlink ``/dev/shm`` segments a hard-killed previous run leaked."""
        from multiprocessing import shared_memory

        try:
            with open(self._path(SEGMENTS_NAME), "rb") as handle:
                names = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            return []
        reclaimed: List[str] = []
        metrics = active_or_null()
        for name in names:
            if not isinstance(name, str):
                continue
            try:
                segment = shared_memory.SharedMemory(name=name)
            except (OSError, ValueError):
                continue  # already gone — the previous run cleaned up
            try:
                with contextlib.suppress(OSError):
                    segment.unlink()
            finally:
                segment.close()
            reclaimed.append(name)
            metrics.inc("checkpoint.stale_segments")
        with contextlib.suppress(OSError):
            os.unlink(self._path(SEGMENTS_NAME))
        return reclaimed

    # -- terminal markers --------------------------------------------------

    def mark_complete(self) -> None:
        """Write the COMPLETE marker and clear transient state."""
        with contextlib.suppress(OSError):
            os.unlink(self._path(ABORTED_NAME))
        with contextlib.suppress(OSError):
            os.unlink(self._path(SEGMENTS_NAME))
        try:
            atomic_write_bytes(
                self._path(COMPLETE_NAME),
                f"{self.manifest.run_id}\n".encode("ascii"),
            )
        except OSError as exc:
            warnings.warn(
                f"could not write COMPLETE marker: {exc}",
                DegradedExecutionWarning,
                stacklevel=2,
            )

    def mark_aborted(self, reason: str) -> None:
        """Write the ABORTED marker (no-op once COMPLETE exists).

        Called on *graceful* aborts — cancellation, deadline, crash unwind.
        The shared-memory segment list is deliberately kept: graceful paths
        also release their segments in their ``finally`` blocks, and a
        stale list costs only a few failed unlinks on resume, whereas
        removing it would lose the reclaim information if this abort races
        a hard kill.
        """
        if self.is_complete():
            return
        active_or_null().inc("checkpoint.aborts")
        try:
            atomic_write_bytes(
                self._path(ABORTED_NAME),
                f"{self.manifest.run_id}: {reason}\n".encode("utf-8"),
            )
        except OSError:
            return  # the directory may be the thing that failed


# -- cooperative cancellation ---------------------------------------------


class CancelToken:
    """A cancellation flag with a wakeup pipe.

    ``fileno()`` exposes the read end so the supervisor can add it to its
    ``multiprocessing.connection.wait`` set — a cancel issued from a signal
    handler then wakes the dispatch loop immediately instead of waiting out
    the current poll timeout.
    """

    def __init__(self) -> None:
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)
        os.set_blocking(self._write_fd, False)
        self._cancelled = False
        self._closed = False
        self.reason: Optional[str] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent, async-signal safe)."""
        if self._cancelled:
            return
        self._cancelled = True
        self.reason = reason
        if not self._closed:
            with contextlib.suppress(OSError):
                os.write(self._write_fd, b"!")

    def fileno(self) -> int:
        return self._read_fd

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(OSError):
            os.close(self._read_fd)
        with contextlib.suppress(OSError):
            os.close(self._write_fd)


_SignalHandler = Union[
    Callable[[int, Optional[FrameType]], object], int, signal.Handlers, None
]


@contextlib.contextmanager
def signal_cancellation(
    token: CancelToken,
    signals: Sequence[signal.Signals] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[CancelToken]:
    """Route SIGINT/SIGTERM into ``token`` for the duration of the block.

    Installed only from the main thread (Python restricts signal handler
    registration to it); elsewhere the block is a no-op and the deadline /
    explicit-token paths still apply. Previous handlers are restored on
    exit, so a durable run's graceful-abort window is exactly the run.
    """
    if threading.current_thread() is not threading.main_thread():
        yield token
        return

    def _handler(signum: int, frame: Optional[FrameType]) -> None:
        token.cancel(f"signal {signal.Signals(signum).name}")

    previous: List[Tuple[signal.Signals, _SignalHandler]] = []
    try:
        for sig in signals:
            previous.append((sig, signal.getsignal(sig)))
            signal.signal(sig, _handler)
        yield token
    finally:
        for sig, old in previous:
            with contextlib.suppress(OSError, ValueError):
                signal.signal(sig, old)


def deadline_at(deadline: Optional[float]) -> Optional[float]:
    """Translate a relative ``deadline=`` budget to a monotonic instant."""
    if deadline is None:
        return None
    return time.monotonic() + deadline
