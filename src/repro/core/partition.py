"""Data partitioning (paper §V): ``AllPartition`` and adaptive ``LCJoin``.

``R`` is split by each set's smallest element in the global order — exactly
the subtrees hanging off the prefix-tree root. Every superset of a set in
partition ``R_e`` must contain ``e``, so the partition only needs a *local*
inverted index built from the ``S`` sets in ``I[e]``; every local list is a
sub-list of its global counterpart and both the binary searches and the gaps
improve (§V-A).

For small partitions the local index's construction cost can exceed its
benefit. ``LCJoin`` (§V-B) therefore visits partitions in ascending size,
processes them with the *global* index while metering the actual cost ``Y``
in abstract units, and estimates the would-be local cost as::

    Y * |I[e]| / |S|  +  Σ_{S ∈ I[e]} |S|

(the scan scales with list length; the second term is the local index build).
Once the estimate is "steadily" no greater than ``Y`` — here: for
``patience`` consecutive partitions — the remaining (larger) partitions are
processed with local indexes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree, TreeNode
from ..obs.spans import trace_span
from .order import GlobalOrder, build_order
from .stats import JoinStats
from .tree_join import run_tree_join

__all__ = ["all_partition_join", "lcjoin", "partition_sizes"]


def _prepare(
    r_collection: SetCollection,
    s_collection: SetCollection,
    order: Optional[GlobalOrder],
    index: Optional[InvertedIndex],
    tree: Optional[PrefixTree],
    stats: Optional[JoinStats],
) -> Tuple[GlobalOrder, InvertedIndex, PrefixTree]:
    """Build (or pass through) the order, global index and prefix tree.

    The partitioning logic needs the python ``InvertedIndex`` API (anchor
    membership lists, ``build_local``) whatever probing backend runs below
    it, so a prebuilt ``index`` must be that type; array backends pack
    per-partition probe indexes from it (see :func:`_pack_index`).
    """
    if index is not None and not isinstance(index, InvertedIndex):
        raise InvalidParameterError(
            "partitioned methods need a python InvertedIndex as the "
            f"prebuilt index (got {type(index).__name__}); array backends "
            "repack per partition internally"
        )
    if index is None:
        index = InvertedIndex.build(s_collection)
        if stats is not None:
            stats.index_build_tokens += index.construction_cost
    if order is None:
        universe = max(r_collection.max_element(), s_collection.max_element()) + 1
        order = build_order(s_collection, universe=universe)
    if tree is None:
        tree = PrefixTree.build(r_collection, order)
    if stats is not None:
        stats.tree_nodes += tree.num_nodes
    return order, index, tree


def _pack_index(index: InvertedIndex, backend: str):
    """Repack a python index for the probing ``backend`` (identity for it).

    Local partition indexes are small, so the pack cost is the same order
    as the local build the partition already paid; the traversal then
    probes zero-copy numpy views (and, for ``hybrid``, carries bitmap rows
    usable by any flat-probing consumer of the same index).
    """
    if backend == "python":
        return index
    from ..index.storage import CSRInvertedIndex, HybridInvertedIndex

    cls = HybridInvertedIndex if backend == "hybrid" else CSRInvertedIndex
    with trace_span("index.csr_pack"):
        return cls.from_index(index)


def partition_sizes(tree: PrefixTree) -> List[Tuple[int, int, TreeNode]]:
    """``(num_sets, anchor_element, subtree)`` for every partition of ``R``.

    ``num_sets`` counts the R sets in the subtree (end-marker rid lists).
    """
    out = []
    for anchor, subtree in tree.partition_roots():
        count = 0
        stack = [subtree]
        while stack:
            node = stack.pop()
            if node.terminal_rids is not None:
                count += len(node.terminal_rids)
            stack.extend(node.children)
        out.append((count, anchor, subtree))
    return out


def _run_partition_local(
    subtree: TreeNode,
    anchor: int,
    tree: PrefixTree,
    index: InvertedIndex,
    s_collection: SetCollection,
    sink,
    early_termination: bool,
    stats: Optional[JoinStats],
    backend: str = "python",
) -> None:
    """Process one partition against its freshly built local index (§V-A)."""
    members = index[anchor]
    if not members:
        return
    local = index.build_local(
        members,
        s_collection,
        needed_elements=tree.partition_elements.get(anchor),
    )
    if stats is not None:
        stats.index_build_tokens += local.construction_cost
        stats.partitions_local += 1
    run_tree_join(
        tree, _pack_index(local, backend), sink,
        early_termination=early_termination, subtree=subtree, stats=stats,
    )


def all_partition_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    early_termination: bool = True,
    order: Optional[GlobalOrder] = None,
    index: Optional[InvertedIndex] = None,
    tree: Optional[PrefixTree] = None,
    stats: Optional[JoinStats] = None,
    backend: str = "python",
) -> None:
    """``AllPartition`` (§V-A): every partition gets a local inverted index.

    ``backend`` selects the probe-side index representation for each
    partition-local join (``"csr"``/``"hybrid"`` repack the local index;
    results are identical across backends).
    """
    __, index, tree = _prepare(r_collection, s_collection, order, index, tree, stats)
    for anchor, subtree in tree.partition_roots():
        _run_partition_local(
            subtree, anchor, tree, index, s_collection, sink,
            early_termination, stats, backend=backend,
        )


def lcjoin(
    r_collection: SetCollection,
    s_collection: SetCollection,
    sink,
    early_termination: bool = True,
    order: Optional[GlobalOrder] = None,
    index: Optional[InvertedIndex] = None,
    tree: Optional[PrefixTree] = None,
    patience: int = 3,
    stats: Optional[JoinStats] = None,
    backend: str = "python",
) -> None:
    """``LCJoin`` (§V-B): adaptively pick the global or a local index.

    Partitions are visited smallest first. Each is processed with the global
    index while its cost ``Y`` is metered; the estimated local cost is
    compared, and after it has been no greater than ``Y`` for ``patience``
    consecutive partitions, all remaining partitions switch to local
    indexes. Join results are identical either way — only the cost differs.

    ``backend`` selects the probe-side index representation: the global
    index is packed once for the global-probing phase, each local index on
    switch; the cost model meters abstract units, so the global/local
    decision is backend-independent.
    """
    __, index, tree = _prepare(r_collection, s_collection, order, index, tree, stats)
    n_total = len(index.universe)
    if n_total == 0:
        return
    probe_index = _pack_index(index, backend)
    ordered = sorted(partition_sizes(tree), key=lambda item: item[0])
    streak = 0
    use_local = False
    for __, anchor, subtree in ordered:
        if use_local:
            _run_partition_local(
                subtree, anchor, tree, index, s_collection, sink,
                early_termination, stats, backend=backend,
            )
            continue
        meter = JoinStats()
        run_tree_join(
            tree, probe_index, sink, early_termination=early_termination,
            subtree=subtree, stats=meter,
        )
        if stats is not None:
            stats.partitions_global += 1
            stats.merge(meter)
        members = index[anchor]
        actual_cost = meter.abstract_cost()
        build_cost = sum(len(s_collection[sid]) for sid in members)
        estimated_local = actual_cost * len(members) / n_total + build_cost
        if estimated_local <= actual_cost:
            streak += 1
            if streak >= patience:
                use_local = True
        else:
            streak = 0
