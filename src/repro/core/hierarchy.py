"""Containment hierarchies (Hasse diagram of the ⊆ partial order).

The all-pair join gives the full containment *relation*; many consumers —
taxonomy induction over tag sets, deduplication of rule bases, lattice
browsing — want the **transitive reduction**: each set linked only to its
*direct* (minimal) supersets. This module derives that hierarchy from one
containment join.

Duplicate sets are collapsed into one node each (a partial order is over
distinct sets; duplicates are recorded on the node). Construction sorts
nodes by set size, collects each node's proper supersets via the join, and
prunes transitive edges with a reachability sweep — ``O(E · depth)`` on the
reduced graph, fine at library scale.

Also here: the skyline helpers ``maximal_sets`` / ``minimal_sets`` (the
top and bottom antichains of the order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..data.collection import SetCollection
from .api import set_containment_join

__all__ = ["HierarchyNode", "ContainmentHierarchy", "build_hierarchy"]


@dataclass
class HierarchyNode:
    """One distinct set in the hierarchy."""

    node_id: int
    record: Tuple[int, ...]
    member_ids: List[int] = field(default_factory=list)
    parents: List[int] = field(default_factory=list)   # direct supersets
    children: List[int] = field(default_factory=list)  # direct subsets

    @property
    def size(self) -> int:
        return len(self.record)


class ContainmentHierarchy:
    """The transitive reduction of ⊆ over a collection's distinct sets."""

    def __init__(self, nodes: List[HierarchyNode]):
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def node_of(self, record: Sequence[int]) -> "HierarchyNode | None":
        key = tuple(sorted(set(record)))
        for node in self.nodes:
            if node.record == key:
                return node
        return None

    def roots(self) -> List[HierarchyNode]:
        """Maximal sets: contained in no other distinct set."""
        return [n for n in self.nodes if not n.parents]

    def leaves(self) -> List[HierarchyNode]:
        """Minimal sets: containing no other distinct set."""
        return [n for n in self.nodes if not n.children]

    def ancestors(self, node_id: int) -> Set[int]:
        """All (transitive) proper supersets of a node."""
        seen: Set[int] = set()
        stack = list(self.nodes[node_id].parents)
        while stack:
            nid = stack.pop()
            if nid not in seen:
                seen.add(nid)
                stack.extend(self.nodes[nid].parents)
        return seen

    def depth(self) -> int:
        """Length of the longest chain (in edges)."""
        memo: Dict[int, int] = {}

        def height(nid: int) -> int:
            if nid not in memo:
                node = self.nodes[nid]
                memo[nid] = 1 + max(
                    (height(c) for c in node.children), default=-1
                )
            return memo[nid]

        # Sets are bounded in size, so chains are short; recursion is safe
        # for any realistic input (chain length <= max set size).
        return max((height(n.node_id) for n in self.roots()), default=0)

    def edges(self) -> List[Tuple[int, int]]:
        """All (child, parent) direct edges."""
        return [(n.node_id, p) for n in self.nodes for p in n.parents]


def build_hierarchy(
    collection: SetCollection, method: str = "lcjoin"
) -> ContainmentHierarchy:
    """Build the containment hierarchy of ``collection``'s distinct sets."""
    from ..data.transforms import deduplicate

    unique, groups = deduplicate(collection)
    nodes = [
        HierarchyNode(node_id=i, record=unique[i], member_ids=groups[i])
        for i in range(len(unique))
    ]
    if not nodes:
        return ContainmentHierarchy(nodes)

    pairs = set_containment_join(unique, unique, method=method)
    supersets: Dict[int, Set[int]] = {i: set() for i in range(len(unique))}
    for rid, sid in pairs:
        if rid != sid:
            supersets[rid].add(sid)

    # Transitive reduction: a superset p of n is *direct* iff no other
    # superset of n lies strictly between them — i.e. p is not a superset
    # of any other superset of n.
    for nid, sups in supersets.items():
        indirect: Set[int] = set()
        for mid in sups:
            indirect |= supersets[mid] & sups
        direct = sorted(sups - indirect)
        nodes[nid].parents = direct
        for p in direct:
            nodes[p].children.append(nid)
    for node in nodes:
        node.children.sort()
    return ContainmentHierarchy(nodes)
