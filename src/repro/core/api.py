"""Public front door: :func:`set_containment_join` and the method registry.

Every algorithm in the library — the paper's four LCJoin variants, the two
partitioned methods, and all nine baselines — is callable through one
function with one signature. The registry also drives the CLI and the
benchmark harness, so adding a method in one place surfaces it everywhere.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..baselines.bnl import bnl_join
from ..baselines.dcj import dcj_join
from ..baselines.limit import limit_join
from ..baselines.naive import naive_join
from ..baselines.piejoin import pie_join
from ..baselines.pretti import pretti_join
from ..baselines.psj import psj_join
from ..baselines.shj import shj_join
from ..baselines.ttjoin import tt_join
from ..data.collection import SetCollection
from ..errors import InvalidParameterError, UnknownMethodError
from ..obs import registry as _obs
from ..obs.registry import MetricsRegistry, use_registry
from ..obs.spans import trace_span
from .framework import framework_join
from .partition import all_partition_join, lcjoin
from .results import make_sink
from .stats import JoinStats, StatsSnapshot
from .tree_join import tree_join

__all__ = [
    "set_containment_join",
    "join_methods",
    "JOIN_METHODS",
    "BACKENDS",
    "BACKEND_METHODS",
]

#: Registered array backends for the index layer.
BACKENDS = ("python", "csr", "hybrid")

#: Methods that probe through the inverted index and therefore understand
#: the ``backend=`` parameter. The partitioned methods repack their
#: per-partition local indexes into the chosen representation; the
#: baselines use their own structures and stay on the Python backend.
BACKEND_METHODS = frozenset(
    {"framework", "framework_et", "tree", "tree_et", "all_partition", "lcjoin"}
)

# Each adapter takes (R, S, sink, stats=..., **kwargs).
JOIN_METHODS: Dict[str, Callable] = {
    # The paper's methods (§III–§V).
    "framework": lambda r, s, sink, **kw: framework_join(
        r, s, sink, early_termination=False, **kw
    ),
    "framework_et": lambda r, s, sink, **kw: framework_join(
        r, s, sink, early_termination=True, **kw
    ),
    "tree": lambda r, s, sink, **kw: tree_join(
        r, s, sink, early_termination=False, **kw
    ),
    "tree_et": lambda r, s, sink, **kw: tree_join(
        r, s, sink, early_termination=True, **kw
    ),
    "all_partition": all_partition_join,
    "lcjoin": lcjoin,
    # Baselines (§VII).
    "naive": naive_join,
    "bnl": bnl_join,
    "pretti": pretti_join,
    "limit": limit_join,
    "ttjoin": tt_join,
    "piejoin": pie_join,
    "shj": shj_join,
    "psj": psj_join,
    "dcj": dcj_join,
}


def join_methods() -> Tuple[str, ...]:
    """Registered method names, paper methods first."""
    return tuple(JOIN_METHODS)


def set_containment_join(
    r_collection: SetCollection,
    s_collection: SetCollection,
    method: str = "lcjoin",
    collect: str = "pairs",
    callback: Optional[Callable[[int, int], None]] = None,
    stats: Optional[JoinStats] = None,
    backend: str = "python",
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    backoff: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    deadline: Optional[float] = None,
    memory_budget: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    **kwargs,
) -> Union[List[Tuple[int, int]], int]:
    """Compute ``R ⋈⊆ S = {(rid, sid) | R[rid] ⊆ S[sid]}``.

    Parameters
    ----------
    r_collection, s_collection:
        The subset side and the superset side. For a self join pass the same
        object twice (the paper evaluates self joins; every reported pair
        then includes the trivial ``R ⊆ R`` reflexive matches, as in the
        original evaluation).
    method:
        One of :func:`join_methods` — ``"lcjoin"`` (the paper's full
        method) by default — or ``"auto"`` to let
        :func:`repro.core.planner.choose_method` pick from workload
        statistics.
    collect:
        ``"pairs"`` returns the list of ``(rid, sid)`` pairs;
        ``"count"`` returns only their number; ``"callback"`` streams each
        pair into ``callback`` and returns the count.
    stats:
        Optional :class:`~repro.core.stats.JoinStats` to meter the run; the
        wall-clock time is always recorded into ``stats.elapsed_seconds``.
    backend:
        ``"python"`` (default — the paper-faithful ``bisect`` loops over
        Python lists), ``"csr"`` — the contiguous numpy layout probed by
        the batched kernels in :mod:`repro.index.kernels` — or
        ``"hybrid"`` — CSR plus uint64 bitmap rows for the densest lists
        and a batched galloping search for the sparse ones (fastest on
        skewed workloads). All produce the identical pair set; the array
        backends are supported by the index-probing methods
        (``framework``, ``framework_et``, ``tree``, ``tree_et``,
        ``all_partition``, ``lcjoin``) and raise
        :class:`~repro.errors.InvalidParameterError` elsewhere.
    workers:
        When set, the join runs through the supervised multiprocess driver
        (:func:`repro.core.parallel.parallel_join`) with that many worker
        processes; ``retries``, ``task_timeout`` and ``backoff`` then tune
        its failure policy (per-chunk re-dispatch count, hang deadline in
        seconds, and base retry delay), ``checkpoint_dir``/``resume`` arm
        the durable run log (spill settled chunks, resume after a driver
        crash), and ``deadline``/``memory_budget`` bound the run's wall
        clock and memory plan — see :func:`~repro.core.parallel
        .parallel_join` for the full durability contract. Supplying any of
        these without ``workers`` (or ``shards``) is an error — they have
        no serial meaning.
    shards:
        When set, the join runs through the sharded scale-out coordinator
        (:class:`~repro.core.shard.ShardCoordinator`) instead of the
        worker pool: that many independent processes-as-nodes, each with
        its own index copy, plus heartbeats, straggler speculation and
        whole-shard crash recovery. The supervision and durability knobs
        above apply unchanged; ``workers`` is ignored when both are set.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` installed
        for the duration of this call: phase spans (``join.run``,
        ``index.build``, ``probe.loop``, ...) and counters land in it,
        and the run's ``JoinStats`` delta is mirrored under its
        ``join.*`` counters. Equivalent to wrapping the call in
        :func:`repro.obs.use_registry`; ``REPRO_TRACE=1`` installs a
        process-wide registry instead.
    kwargs:
        Method-specific knobs (e.g. ``limit=`` for LIMIT+, ``k=`` for
        TT-Join, ``patience=`` for LCJoin, ``patricia=True`` for the
        compressed tree). Unknown knobs raise ``TypeError`` from the method.

    Returns
    -------
    The pair list (``collect="pairs"``) or the result count.
    """
    if metrics is not None:
        # Scoped activation: install the caller's registry, then re-enter
        # with it active so one code path below serves both the kwarg and
        # the REPRO_TRACE / use_registry activation styles.
        with use_registry(metrics):
            return set_containment_join(
                r_collection, s_collection, method=method, collect=collect,
                callback=callback, stats=stats, backend=backend,
                workers=workers, shards=shards, retries=retries,
                task_timeout=task_timeout,
                backoff=backoff, checkpoint_dir=checkpoint_dir,
                resume=resume, deadline=deadline,
                memory_budget=memory_budget, **kwargs,
            )
    reg = _obs.ACTIVE
    if reg is not None and stats is None:
        # Tracing implies metering: the registry's join.* mirror is flushed
        # from this run's stats delta on the way out.
        stats = JoinStats()
    snapshot = StatsSnapshot.of(stats) if reg is not None and stats is not None else None
    supervision = {
        "retries": retries, "task_timeout": task_timeout, "backoff": backoff,
        "checkpoint_dir": checkpoint_dir, "deadline": deadline,
        "memory_budget": memory_budget,
        "resume": resume if resume else None,
    }
    if workers is None and shards is None:
        set_knobs = [name for name, value in supervision.items() if value is not None]
        if set_knobs:
            raise InvalidParameterError(
                f"{', '.join(set_knobs)} only apply to parallel joins; "
                "pass workers= or shards= as well"
            )
    else:
        # Lazy import: parallel_join's workers call back into this function,
        # so the modules are mutually recursive by design.
        from .parallel import parallel_join

        knobs = {k: v for k, v in supervision.items() if v is not None}
        start = time.perf_counter()
        with trace_span("join.run"):
            pairs = parallel_join(
                r_collection, s_collection, method=method, workers=workers,
                shards=shards, backend=backend, **knobs, **kwargs,
            )
        sink = make_sink(collect, callback)
        for rid, sid in pairs:
            sink.add(rid, sid)
        if stats is not None:
            stats.elapsed_seconds += time.perf_counter() - start
            stats.results += len(sink)
        if reg is not None and snapshot is not None and stats is not None:
            reg.record_join_stats(snapshot.delta(stats))
        if collect == "pairs":
            return sink.pairs
        return len(sink)
    if method == "auto":
        # Lazy import: the planner's estimator runs joins through this very
        # function, so the modules are mutually recursive by design.
        from .planner import choose_method

        method = choose_method(r_collection, s_collection).method
    try:
        impl = JOIN_METHODS[method]
    except KeyError:
        raise UnknownMethodError(method, join_methods()) from None
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend != "python":
        if method not in BACKEND_METHODS:
            raise InvalidParameterError(
                f"backend={backend!r} is only supported by "
                f"{sorted(BACKEND_METHODS)}; got method={method!r}"
            )
        kwargs["backend"] = backend
    sink = make_sink(collect, callback)
    start = time.perf_counter()
    with trace_span("join.run"):
        impl(r_collection, s_collection, sink, stats=stats, **kwargs)
    elapsed = time.perf_counter() - start
    if stats is not None:
        stats.elapsed_seconds += elapsed
        stats.results += len(sink)
    if reg is not None and snapshot is not None and stats is not None:
        reg.record_join_stats(snapshot.delta(stats))
    if (
        backend != "python"
        and collect == "pairs"
        and os.environ.get("REPRO_CHECK", "") not in ("", "0")
    ):
        # REPRO_CHECK=1 sanitizer: spot-check the array-backend pair set
        # against the Python backend (size-capped inside). The rerun uses
        # the default backend, so it cannot recurse.
        from .selfcheck import crosscheck_backends

        crosscheck_backends(
            r_collection, s_collection, sink.pairs, method, backend=backend
        )
    if collect == "pairs":
        return sink.pairs
    return len(sink)
