"""Containment analytics over one join pass.

Aggregate views of the containment relation that applications keep asking
for, each computed with a streaming sink so the pair list never needs to
be materialised:

* :func:`containment_counts` — per-``R`` superset counts and per-``S``
  subset counts (fan-out histograms of the relation);
* :func:`top_contained` — the ``R`` sets with the most supersets (the
  "most general" records: short popular tag sets, loose rule patterns);
* :func:`top_containers` — the ``S`` sets containing the most others (hub
  records: catch-all documents, wide transactions);
* :func:`containment_ratio` — the relation's density against the full
  cross product, a one-number selectivity measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..data.collection import SetCollection
from .api import set_containment_join
from .stats import JoinStats

__all__ = [
    "ContainmentCounts",
    "containment_counts",
    "top_contained",
    "top_containers",
    "containment_ratio",
]


@dataclass(frozen=True)
class ContainmentCounts:
    """Fan-out of the containment relation."""

    supersets_per_r: Tuple[int, ...]
    subsets_per_s: Tuple[int, ...]
    total_pairs: int

    def r_histogram(self) -> List[Tuple[int, int]]:
        """(superset count, how many R sets have it), ascending."""
        from collections import Counter

        return sorted(Counter(self.supersets_per_r).items())


def containment_counts(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    method: str = "lcjoin",
    stats: Optional[JoinStats] = None,
) -> ContainmentCounts:
    """Count the relation's fan-out without materialising pairs."""
    s = s_collection if s_collection is not None else r_collection
    per_r = [0] * len(r_collection)
    per_s = [0] * len(s)

    def on_pair(rid: int, sid: int) -> None:
        per_r[rid] += 1
        per_s[sid] += 1

    total = set_containment_join(
        r_collection, s, method=method, collect="callback",
        callback=on_pair, stats=stats,
    )
    return ContainmentCounts(tuple(per_r), tuple(per_s), total)


def top_contained(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    k: int = 10,
    method: str = "lcjoin",
) -> List[Tuple[int, int]]:
    """The ``k`` R ids with the most supersets, as (rid, count), ties by id."""
    counts = containment_counts(r_collection, s_collection, method=method)
    order = sorted(
        range(len(counts.supersets_per_r)),
        key=lambda rid: (-counts.supersets_per_r[rid], rid),
    )
    return [(rid, counts.supersets_per_r[rid]) for rid in order[:k]]


def top_containers(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    k: int = 10,
    method: str = "lcjoin",
) -> List[Tuple[int, int]]:
    """The ``k`` S ids containing the most R sets, as (sid, count)."""
    counts = containment_counts(r_collection, s_collection, method=method)
    order = sorted(
        range(len(counts.subsets_per_s)),
        key=lambda sid: (-counts.subsets_per_s[sid], sid),
    )
    return [(sid, counts.subsets_per_s[sid]) for sid in order[:k]]


def containment_ratio(
    r_collection: SetCollection,
    s_collection: Optional[SetCollection] = None,
    method: str = "lcjoin",
) -> float:
    """``|R ⋈⊆ S| / (|R|·|S|)`` — the relation's density in [0, 1]."""
    s = s_collection if s_collection is not None else r_collection
    cross = len(r_collection) * len(s)
    if cross == 0:
        return 0.0
    total = set_containment_join(r_collection, s, method=method, collect="count")
    return total / cross
