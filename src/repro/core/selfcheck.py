"""Differential self-checking.

A library whose core value is "the fast algorithm returns exactly what
brute force would" should be able to demonstrate that on demand, on the
user's machine, against the user's data shapes. :func:`self_check` runs a
randomized differential campaign: generate instances across a grid of
shapes (skew, duplication, universe size, set-size mix), run every
registered method, and compare each against the naive ground truth. The
CLI exposes it as ``lcjoin selftest``.

This is the same discipline as the test suite's equivalence module, but
packaged as a runtime facility with a structured report — usable in CI
pipelines of downstream projects or after local modifications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..data.collection import SetCollection
from ..errors import InvalidParameterError
from .api import JOIN_METHODS, set_containment_join
from .verify import ground_truth

__all__ = ["SelfCheckReport", "Discrepancy", "self_check"]


@dataclass(frozen=True)
class Discrepancy:
    """One method disagreeing with ground truth on one instance."""

    method: str
    seed: int
    missing: int
    extra: int
    r_records: Tuple[Tuple[int, ...], ...]
    s_records: Tuple[Tuple[int, ...], ...]

    def __str__(self) -> str:
        return (
            f"{self.method} (seed {self.seed}): {self.missing} missing, "
            f"{self.extra} extra pairs on |R|={len(self.r_records)}, "
            f"|S|={len(self.s_records)}"
        )


@dataclass
class SelfCheckReport:
    """Outcome of a differential campaign."""

    trials: int = 0
    comparisons: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.discrepancies)} FAILURES"
        lines = [
            f"self-check: {status} — {self.trials} instances, "
            f"{self.comparisons} method comparisons"
        ]
        lines.extend(str(d) for d in self.discrepancies[:10])
        return "\n".join(lines)


def _random_instance(rng: random.Random) -> Tuple[SetCollection, SetCollection]:
    """One adversarially-shaped instance.

    The shape grid deliberately includes the corners that have bitten set
    join implementations: single-element universes, heavy duplication,
    prefix chains, and elements present on one side only.
    """
    universe = rng.choice([1, 2, 4, 8, 16, 40])
    shape = rng.choice(["uniform", "dupes", "chains", "skew"])

    def one_set() -> List[int]:
        if shape == "chains":
            start = 0
            length = rng.randint(1, min(universe, 8))
            return list(range(start, start + length))
        if shape == "skew":
            return list({
                min(int(universe * rng.random() ** 2), universe - 1)
                for __ in range(rng.randint(1, 6))
            })
        return rng.sample(range(universe), rng.randint(1, min(universe, 6)))

    def collection(n: int) -> SetCollection:
        base = [one_set() for __ in range(n)]
        if shape == "dupes" and base:
            base = [base[rng.randrange(len(base))] for __ in range(n)]
        # One side may reference elements the other never saw.
        if rng.random() < 0.3:
            base.append([universe + rng.randint(0, 3)])
        return SetCollection(base)

    return collection(rng.randint(1, 20)), collection(rng.randint(1, 20))


def self_check(
    trials: int = 50,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    stop_on_failure: bool = False,
) -> SelfCheckReport:
    """Run the differential campaign; see the module docstring."""
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    chosen = tuple(methods) if methods is not None else tuple(
        m for m in JOIN_METHODS if m != "naive"
    )
    unknown = [m for m in chosen if m not in JOIN_METHODS]
    if unknown:
        raise InvalidParameterError(f"unknown methods: {unknown}")
    report = SelfCheckReport()
    for trial in range(trials):
        instance_seed = seed + trial
        rng = random.Random(instance_seed)
        r, s = _random_instance(rng)
        expected = set(ground_truth(r, s))
        report.trials += 1
        for method in chosen:
            got = set(set_containment_join(r, s, method=method))
            report.comparisons += 1
            if got != expected:
                report.discrepancies.append(
                    Discrepancy(
                        method=method,
                        seed=instance_seed,
                        missing=len(expected - got),
                        extra=len(got - expected),
                        r_records=tuple(r.records),
                        s_records=tuple(s.records),
                    )
                )
                if stop_on_failure:
                    return report
    return report
