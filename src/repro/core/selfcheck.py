"""Differential self-checking and the ``REPRO_CHECK=1`` debug sanitizer.

A library whose core value is "the fast algorithm returns exactly what
brute force would" should be able to demonstrate that on demand, on the
user's machine, against the user's data shapes. :func:`self_check` runs a
randomized differential campaign: generate instances across a grid of
shapes (skew, duplication, universe size, set-size mix), run every
registered method, and compare each against the naive ground truth. The
CLI exposes it as ``lcjoin selftest``.

This is the same discipline as the test suite's equivalence module, but
packaged as a runtime facility with a structured report — usable in CI
pipelines of downstream projects or after local modifications.

Debug sanitizer (``REPRO_CHECK=1``)
-----------------------------------
The static analyzer (``python -m tools.lint``) proves invariants about the
*source*; the sanitizer is its dynamic counterpart, checking the *data* at
runtime. Setting the environment variable ``REPRO_CHECK=1`` turns on cheap
asserts at the structural seams:

* every inverted list is strictly ascending and bounded by ``inf_sid``
  after a build (:func:`check_sorted_lists`);
* the CSR arrays are monotone and mutually consistent after a build or a
  shared-memory attach (:func:`check_csr_layout`);
* the hybrid backend's bitmap rows reconstruct bit-exactly to their CSR
  value slices and the dense routing tables are mutually inverse
  (:func:`check_hybrid_layout`);
* array-backend joins (``backend="csr"`` or ``"hybrid"``) on small
  instances are spot-checked against the Python backend pair set
  (:func:`crosscheck_backends`).

Violations raise :class:`~repro.errors.InvariantViolation`. The checks are
read-only and O(index size) at worst, so the mode is suitable for CI smoke
runs and for debugging; it is **off** by default and costs one environment
lookup per build when disabled.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..data.collection import SetCollection
from ..errors import InvalidParameterError, InvariantViolation
from .api import BACKENDS, JOIN_METHODS, set_containment_join
from .verify import ground_truth

__all__ = [
    "SelfCheckReport",
    "Discrepancy",
    "self_check",
    "repro_check_enabled",
    "check_sorted_lists",
    "check_csr_layout",
    "check_hybrid_layout",
    "crosscheck_backends",
]

#: Above this many (|R| x |S|) cells the cross-backend spot check is skipped
#: — the sanitizer must stay cheap enough to leave on for a whole test run.
_CROSSCHECK_CELLS = 250_000


def repro_check_enabled() -> bool:
    """True when the ``REPRO_CHECK`` debug-sanitizer mode is on.

    Read dynamically (not cached at import) so tests and embedding
    processes can toggle the mode per call site.
    """
    return os.environ.get("REPRO_CHECK", "") not in ("", "0")


def check_sorted_lists(index) -> None:
    """Assert every inverted list is strictly ascending and id-bounded.

    Applies to :class:`~repro.index.inverted.InvertedIndex` (global or
    local). Gap-skipping probes (paper §IV) are only sound on sorted lists,
    so this is the single most load-bearing invariant in the library.
    """
    inf_sid = index.inf_sid
    for element, lst in index.lists.items():
        previous = -1
        for sid in lst:
            if sid <= previous:
                raise InvariantViolation(
                    f"inverted list of element {element} is not strictly "
                    f"ascending: ...{previous}, {sid}..."
                )
            previous = sid
        if previous >= inf_sid:
            raise InvariantViolation(
                f"inverted list of element {element} contains id {previous} "
                f">= inf_sid {inf_sid}"
            )
    universe = index.universe
    if not isinstance(universe, range):
        if any(b <= a for a, b in zip(universe, universe[1:])):
            raise InvariantViolation("index universe is not strictly ascending")


def check_csr_layout(index) -> None:
    """Assert the CSR arrays of a ``CSRInvertedIndex`` are consistent.

    Checks: ``offsets`` monotone nondecreasing from 0 to ``len(values)``;
    ``keyed`` globally nondecreasing (which implies every per-list slice of
    ``values`` is sorted, since lists occupy disjoint key ranges); postings
    within ``[0, stride)`` so composite keys cannot collide across lists.
    """
    import numpy as np

    offsets, values, keyed = index.offsets, index.values, index.keyed
    if offsets.shape[0] == 0 or offsets[0] != 0:
        raise InvariantViolation("CSR offsets must start at 0")
    if int(offsets[-1]) != values.shape[0]:
        raise InvariantViolation(
            f"CSR offsets end ({int(offsets[-1])}) != len(values) "
            f"({values.shape[0]})"
        )
    if np.any(np.diff(offsets) < 0):
        raise InvariantViolation("CSR offsets are not monotone nondecreasing")
    if keyed.shape[0] != values.shape[0]:
        raise InvariantViolation("CSR keyed/values length mismatch")
    if keyed.shape[0]:
        if np.any(np.diff(keyed) < 0):
            raise InvariantViolation(
                "CSR composite keys are not globally sorted — an inverted "
                "list was mutated after freeze"
            )
        if int(values.min()) < 0 or int(values.max()) >= index.stride:
            raise InvariantViolation(
                "CSR postings fall outside [0, stride); composite keys "
                "would collide across lists"
            )


def check_hybrid_layout(index) -> None:
    """Assert the dense-side structures of a ``HybridInvertedIndex``.

    On top of the CSR checks (which still apply — the hybrid index keeps
    the full CSR arrays): ``dense_ids`` strictly ascending and in-range,
    ``dense_map`` its exact inverse, ``bitmap_words`` sized to ``inf_sid``,
    and every bitmap row reconstructing bit-for-bit to the element's CSR
    ``values`` slice (unpacked little-endian, the layout the probe kernels
    assume).
    """
    import numpy as np

    check_csr_layout(index)
    dense_ids = index.dense_ids
    words = index.bitmap_words
    if words != (index.inf_sid + 63) >> 6:
        raise InvariantViolation(
            f"hybrid bitmap_words {words} != ceil(inf_sid / 64) for "
            f"inf_sid {index.inf_sid}"
        )
    if dense_ids.shape[0]:
        if np.any(np.diff(dense_ids) <= 0):
            raise InvariantViolation("hybrid dense_ids not strictly ascending")
        if int(dense_ids[0]) < 0 or int(dense_ids[-1]) >= index.num_slots:
            raise InvariantViolation("hybrid dense_ids out of element range")
    if index.bitmap.shape[0] != dense_ids.shape[0] * words:
        raise InvariantViolation(
            f"hybrid bitmap length {index.bitmap.shape[0]} != num_dense "
            f"({dense_ids.shape[0]}) * words ({words})"
        )
    expected_map = np.full(index.num_slots, -1, dtype=np.int64)
    if dense_ids.shape[0]:
        expected_map[dense_ids] = np.arange(dense_ids.shape[0], dtype=np.int64)
    if not np.array_equal(index.dense_map, expected_map):
        raise InvariantViolation("hybrid dense_map is not the dense_ids inverse")
    for row, element in enumerate(dense_ids.tolist()):
        row_words = index.bitmap[row * words : (row + 1) * words]
        bits = np.unpackbits(
            row_words.astype("<u8").view(np.uint8), bitorder="little"
        )
        got = np.flatnonzero(bits)
        lst = index.values[index.offsets[element] : index.offsets[element + 1]]
        if not np.array_equal(got, np.asarray(lst, dtype=np.int64)):
            raise InvariantViolation(
                f"hybrid bitmap row for element {element} does not "
                f"reconstruct its CSR list"
            )


def crosscheck_backends(
    r_collection, s_collection, pairs, method: str, backend: str = "csr"
) -> None:
    """Spot-check an array-backend pair set against the Python backend.

    Skipped on instances larger than the ``_CROSSCHECK_CELLS`` budget so the
    sanitizer stays affordable; small instances are where shape edge cases
    live anyway (the differential campaign below leans on the same insight).
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if len(r_collection) * max(len(s_collection), 1) > _CROSSCHECK_CELLS:
        return
    # The shadow join runs under a throwaway registry: the sanitizer is
    # invoked while the caller's metrics registry is still installed, and
    # letting the verification pass feed it would double every join
    # counter the caller reads afterwards.
    from ..obs.registry import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()):
        expected = set(
            set_containment_join(r_collection, s_collection, method=method)
        )
    got = set(pairs)
    if got != expected:
        missing = len(expected - got)
        extra = len(got - expected)
        raise InvariantViolation(
            f"backend={backend!r} pair set diverges from backend='python' "
            f"for method={method!r}: {missing} missing, {extra} extra of "
            f"{len(expected)} expected"
        )


@dataclass(frozen=True)
class Discrepancy:
    """One method disagreeing with ground truth on one instance."""

    method: str
    seed: int
    missing: int
    extra: int
    r_records: Tuple[Tuple[int, ...], ...]
    s_records: Tuple[Tuple[int, ...], ...]

    def __str__(self) -> str:
        return (
            f"{self.method} (seed {self.seed}): {self.missing} missing, "
            f"{self.extra} extra pairs on |R|={len(self.r_records)}, "
            f"|S|={len(self.s_records)}"
        )


@dataclass
class SelfCheckReport:
    """Outcome of a differential campaign."""

    trials: int = 0
    comparisons: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.discrepancies)} FAILURES"
        lines = [
            f"self-check: {status} — {self.trials} instances, "
            f"{self.comparisons} method comparisons"
        ]
        lines.extend(str(d) for d in self.discrepancies[:10])
        return "\n".join(lines)


def _random_instance(rng: random.Random) -> Tuple[SetCollection, SetCollection]:
    """One adversarially-shaped instance.

    The shape grid deliberately includes the corners that have bitten set
    join implementations: single-element universes, heavy duplication,
    prefix chains, and elements present on one side only.
    """
    universe = rng.choice([1, 2, 4, 8, 16, 40])
    shape = rng.choice(["uniform", "dupes", "chains", "skew"])

    def one_set() -> List[int]:
        if shape == "chains":
            start = 0
            length = rng.randint(1, min(universe, 8))
            return list(range(start, start + length))
        if shape == "skew":
            return list({
                min(int(universe * rng.random() ** 2), universe - 1)
                for __ in range(rng.randint(1, 6))
            })
        return rng.sample(range(universe), rng.randint(1, min(universe, 6)))

    def collection(n: int) -> SetCollection:
        base = [one_set() for __ in range(n)]
        if shape == "dupes" and base:
            base = [base[rng.randrange(len(base))] for __ in range(n)]
        # One side may reference elements the other never saw.
        if rng.random() < 0.3:
            base.append([universe + rng.randint(0, 3)])
        return SetCollection(base)

    return collection(rng.randint(1, 20)), collection(rng.randint(1, 20))


def self_check(
    trials: int = 50,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    stop_on_failure: bool = False,
) -> SelfCheckReport:
    """Run the differential campaign; see the module docstring."""
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    chosen = tuple(methods) if methods is not None else tuple(
        m for m in JOIN_METHODS if m != "naive"
    )
    unknown = [m for m in chosen if m not in JOIN_METHODS]
    if unknown:
        raise InvalidParameterError(f"unknown methods: {unknown}")
    report = SelfCheckReport()
    for trial in range(trials):
        instance_seed = seed + trial
        rng = random.Random(instance_seed)
        r, s = _random_instance(rng)
        expected = set(ground_truth(r, s))
        report.trials += 1
        for method in chosen:
            got = set(set_containment_join(r, s, method=method))
            report.comparisons += 1
            if got != expected:
                report.discrepancies.append(
                    Discrepancy(
                        method=method,
                        seed=instance_seed,
                        missing=len(expected - got),
                        extra=len(got - expected),
                        r_records=tuple(r.records),
                        s_records=tuple(s.records),
                    )
                )
                if stop_on_failure:
                    return report
    return report
