"""Relational layer: tables, CSV ingestion, inclusion-dependency discovery."""

from .csv_io import load_csv, load_directory
from .ind import (
    InclusionDependency,
    NaryInclusionDependency,
    find_inds,
    find_nary_inds,
)
from .table import Column, ColumnRef, Table

__all__ = [
    "Table",
    "Column",
    "ColumnRef",
    "load_csv",
    "load_directory",
    "find_inds",
    "find_nary_inds",
    "InclusionDependency",
    "NaryInclusionDependency",
]
