"""Minimal relational substrate for the inclusion-dependency application.

The paper's §I motivates set containment joins with inclusion dependency
discovery: "if two columns of values are modeled as sets, then set
containment can be used to determine if there is an inclusion dependency
between them". This package is that application built out properly: a
small typed table abstraction (this module), CSV ingestion
(:mod:`repro.relational.csv_io`), and the discovery driver
(:mod:`repro.relational.ind`).

A :class:`Table` is a named list of :class:`Column` objects; a column knows
its distinct-value set, which is all the containment join needs. Values
are kept as strings (CSV semantics) unless a caster is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..errors import DatasetError

__all__ = ["Column", "Table", "ColumnRef"]


@dataclass(frozen=True)
class ColumnRef:
    """A fully qualified column name, ``table.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


class Column:
    """One named column: ordered values plus their distinct-value set."""

    __slots__ = ("name", "values", "_distinct")

    def __init__(self, name: str, values: Iterable[Hashable]):
        self.name = name
        self.values: List[Hashable] = list(values)
        self._distinct: Optional[frozenset] = None

    @property
    def distinct(self) -> frozenset:
        """The distinct non-null values (``None`` and ``""`` excluded).

        Nulls never participate in inclusion dependencies: SQL's foreign
        keys ignore NULL references, and an empty string in a CSV is a
        missing value, not a value.
        """
        if self._distinct is None:
            self._distinct = frozenset(
                v for v in self.values if v is not None and v != ""
            )
        return self._distinct

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {len(self.values)} values)"


class Table:
    """A named table with equal-length columns."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name:
            raise DatasetError("table name must be non-empty")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise DatasetError(f"table {name!r} has duplicate columns: {dupes}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise DatasetError(
                f"table {name!r} has ragged columns (lengths {sorted(lengths)})"
            )
        self.name = name
        self.columns: List[Column] = list(columns)
        self._by_name: Dict[str, Column] = {c.name: c for c in columns}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        header: Sequence[str],
        rows: Iterable[Sequence[Hashable]],
        casts: Optional[Dict[str, Callable[[str], Hashable]]] = None,
    ) -> "Table":
        """Build from a header and row tuples (the CSV reader's shape)."""
        materialised = [list(row) for row in rows]
        for i, row in enumerate(materialised):
            if len(row) != len(header):
                raise DatasetError(
                    f"table {name!r} row {i} has {len(row)} fields, "
                    f"expected {len(header)}"
                )
        columns = []
        for j, col_name in enumerate(header):
            values: List[Hashable] = [row[j] for row in materialised]
            cast = casts.get(col_name) if casts else None
            if cast is not None:
                values = [cast(v) if v not in (None, "") else v for v in values]
            columns.append(Column(col_name, values))
        return cls(name, columns)

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Sequence[Hashable]]) -> "Table":
        """Build from a column-name → values mapping."""
        return cls(name, [Column(k, v) for k, v in data.items()])

    # -- access --------------------------------------------------------------

    def __getitem__(self, column: str) -> Column:
        try:
            return self._by_name[column]
        except KeyError:
            raise DatasetError(
                f"table {self.name!r} has no column {column!r}; "
                f"columns: {[c.name for c in self.columns]}"
            ) from None

    def __contains__(self, column: str) -> bool:
        return column in self._by_name

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def column_refs(self) -> List[ColumnRef]:
        return [ColumnRef(self.name, c.name) for c in self.columns]

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {self.num_rows} rows x "
            f"{len(self.columns)} columns)"
        )


def all_column_sets(
    tables: Sequence[Table],
) -> Tuple[List[ColumnRef], List[frozenset]]:
    """Flatten tables into parallel (refs, distinct-value sets) lists,
    skipping columns that are entirely null (they have no value set)."""
    refs: List[ColumnRef] = []
    sets: List[frozenset] = []
    for table in tables:
        for column in table.columns:
            if column.distinct:
                refs.append(ColumnRef(table.name, column.name))
                sets.append(column.distinct)
    return refs, sets
