"""CSV ingestion for the relational layer.

A thin, predictable wrapper over :mod:`csv`: the first row is the header,
every following row a record; short rows raise, values stay strings unless
per-column casts are given. :func:`load_directory` ingests a directory of
``.csv`` files as one schema (file stem = table name), which is the natural
input shape for inclusion-dependency discovery over a data lake dump.
"""

from __future__ import annotations

import csv
import os
from typing import Callable, Dict, Hashable, List, Optional

from ..errors import DatasetError
from .table import Table

__all__ = ["load_csv", "load_directory"]


def load_csv(
    path: str,
    table_name: Optional[str] = None,
    delimiter: str = ",",
    casts: Optional[Dict[str, Callable[[str], Hashable]]] = None,
) -> Table:
    """Load one CSV file as a :class:`~repro.relational.table.Table`.

    ``table_name`` defaults to the file stem. The header row is required.
    """
    if not os.path.exists(path):
        raise DatasetError(f"CSV file not found: {path}")
    name = table_name or os.path.splitext(os.path.basename(path))[0]
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty CSV (no header row)") from None
        rows = list(reader)
    return Table.from_rows(name, [h.strip() for h in header], rows, casts=casts)


def load_directory(
    directory: str,
    delimiter: str = ",",
) -> List[Table]:
    """Load every ``*.csv`` in a directory as one schema, sorted by name."""
    if not os.path.isdir(directory):
        raise DatasetError(f"not a directory: {directory}")
    tables = []
    for entry in sorted(os.listdir(directory)):
        if entry.lower().endswith(".csv"):
            tables.append(load_csv(os.path.join(directory, entry),
                                   delimiter=delimiter))
    if not tables:
        raise DatasetError(f"no .csv files in {directory}")
    return tables
