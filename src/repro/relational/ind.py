"""Inclusion dependency discovery via set containment joins.

The paper's §I application, built end to end. A **unary inclusion
dependency (IND)** ``A ⊆ B`` holds when every non-null value of column A
occurs in column B — the precondition for a foreign key A → B. Modelling
every column as its distinct-value set turns "find all INDs in a schema"
into exactly one self set-containment join over the column sets, which is
where LCJoin comes in: schemas have thousands of columns and the value
sets share heavy overlaps.

On top of the unary discovery this module implements the classic levelwise
lift to **n-ary INDs** (à la MIND): candidate n-ary INDs are generated
from valid (n-1)-ary ones (every projection of a valid IND must be valid)
and verified on the actual tuple sets.

The result objects carry simple quality signals (coverage of the
referenced column, distinct counts) so callers can rank foreign-key
candidates instead of drowning in trivial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Set, Tuple

from ..core.api import set_containment_join
from ..data.collection import ElementDictionary, SetCollection
from .table import ColumnRef, Table, all_column_sets

__all__ = ["InclusionDependency", "NaryInclusionDependency", "find_inds", "find_nary_inds"]


@dataclass(frozen=True)
class InclusionDependency:
    """A unary IND ``dependent ⊆ referenced`` with quality signals."""

    dependent: ColumnRef
    referenced: ColumnRef
    dependent_distinct: int
    referenced_distinct: int

    @property
    def coverage(self) -> float:
        """Fraction of the referenced column's values actually referenced.

        A near-1.0 coverage is a strong foreign-key signal; near-0 hints a
        coincidental containment (e.g. a boolean column inside any column
        that happens to contain "0" and "1").
        """
        if self.referenced_distinct == 0:
            return 0.0
        return self.dependent_distinct / self.referenced_distinct

    def __str__(self) -> str:
        return (
            f"{self.dependent} ⊆ {self.referenced} "
            f"(coverage {self.coverage:.0%})"
        )


@dataclass(frozen=True)
class NaryInclusionDependency:
    """An n-ary IND: the dependent column tuple is contained, row-wise, in
    the referenced column tuple."""

    dependent: Tuple[ColumnRef, ...]
    referenced: Tuple[ColumnRef, ...]

    @property
    def arity(self) -> int:
        return len(self.dependent)

    def __str__(self) -> str:
        dep = ", ".join(map(str, self.dependent))
        ref = ", ".join(map(str, self.referenced))
        return f"[{dep}] ⊆ [{ref}]"


def find_inds(
    tables: Sequence[Table],
    method: str = "lcjoin",
    include_self: bool = False,
    min_coverage: float = 0.0,
) -> List[InclusionDependency]:
    """All unary INDs across ``tables`` via one containment join.

    ``include_self`` keeps the reflexive ``A ⊆ A`` pairs (off by default —
    they are tautologies); ``min_coverage`` filters weak candidates.
    """
    refs, value_sets = all_column_sets(tables)
    if not refs:
        return []
    dictionary = ElementDictionary()
    columns = SetCollection.from_iterable(value_sets, dictionary=dictionary)
    pairs = set_containment_join(columns, columns, method=method)
    out: List[InclusionDependency] = []
    for rid, sid in pairs:
        if rid == sid and not include_self:
            continue
        ind = InclusionDependency(
            dependent=refs[rid],
            referenced=refs[sid],
            dependent_distinct=len(value_sets[rid]),
            referenced_distinct=len(value_sets[sid]),
        )
        if ind.coverage >= min_coverage:
            out.append(ind)
    out.sort(key=lambda i: (-i.coverage, str(i.dependent), str(i.referenced)))
    return out


def _tuple_set(table: Table, columns: Sequence[str]) -> Set[Tuple]:
    """Row-wise value tuples over ``columns``, rows with nulls dropped."""
    cols = [table[c].values for c in columns]
    out: Set[Tuple] = set()
    for row in zip(*cols):
        if any(v is None or v == "" for v in row):
            continue
        out.add(tuple(row))
    return out


def find_nary_inds(
    tables: Sequence[Table],
    max_arity: int = 2,
    method: str = "lcjoin",
) -> List[NaryInclusionDependency]:
    """Levelwise n-ary IND discovery (MIND-style) up to ``max_arity``.

    Level 1 comes from :func:`find_inds`; level n candidates combine two
    level n−1 INDs between the same table pair that disagree in exactly
    their last column, and each candidate is verified on the actual tuple
    sets. Columns may not repeat on either side of a candidate.
    """
    by_name: Dict[str, Table] = {t.name: t for t in tables}
    unary = find_inds(tables, method=method)
    current: List[NaryInclusionDependency] = [
        NaryInclusionDependency((ind.dependent,), (ind.referenced,))
        for ind in unary
        # Cross- or intra-table, but a column can't depend on itself.
        if ind.dependent != ind.referenced
    ]
    results = list(current)
    valid_pairs: Set[Tuple[Tuple[ColumnRef, ...], Tuple[ColumnRef, ...]]] = {
        (ind.dependent, ind.referenced) for ind in current
    }
    for __ in range(2, max_arity + 1):
        nxt: List[NaryInclusionDependency] = []
        seen: Set[Tuple] = set()
        for a, b in combinations(current, 2):
            cand = _combine(a, b)
            if cand is None:
                continue
            key = (cand.dependent, cand.referenced)
            if key in seen:
                continue
            seen.add(key)
            # Apriori prune: every unary projection must already be valid.
            if not all(
                ((d,), (r,)) in valid_pairs
                for d, r in zip(cand.dependent, cand.referenced)
            ):
                continue
            if _verify_nary(cand, by_name):
                nxt.append(cand)
        if not nxt:
            break
        results.extend(nxt)
        current = nxt
    return results


def _combine(
    a: NaryInclusionDependency, b: NaryInclusionDependency
) -> "NaryInclusionDependency | None":
    """Join two INDs of arity n into an arity n+1 candidate, or None.

    Requires a shared prefix, same dependent/referenced tables, and no
    repeated column on either side (matching the levelwise generation of
    MIND)."""
    if a.arity != b.arity:
        return None
    if a.dependent[:-1] != b.dependent[:-1] or a.referenced[:-1] != b.referenced[:-1]:
        return None
    if a.dependent[0].table != b.dependent[0].table:
        return None
    if a.referenced[0].table != b.referenced[0].table:
        return None
    # Canonical ordering: each unordered pair arrives once from
    # combinations(), so orient it rather than discard it.
    if str(a.dependent[-1]) == str(b.dependent[-1]):
        return None
    if str(a.dependent[-1]) > str(b.dependent[-1]):
        a, b = b, a
    dependent = a.dependent + (b.dependent[-1],)
    referenced = a.referenced + (b.referenced[-1],)
    if len({c.column for c in dependent}) != len(dependent):
        return None
    if len({c.column for c in referenced}) != len(referenced):
        return None
    return NaryInclusionDependency(dependent, referenced)


def _verify_nary(
    cand: NaryInclusionDependency, by_name: Dict[str, Table]
) -> bool:
    dep_table = by_name[cand.dependent[0].table]
    ref_table = by_name[cand.referenced[0].table]
    dep = _tuple_set(dep_table, [c.column for c in cand.dependent])
    ref = _tuple_set(ref_table, [c.column for c in cand.referenced])
    return dep <= ref
