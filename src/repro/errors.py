"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle anything the
library signals while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatasetError",
    "InvalidParameterError",
    "UnknownMethodError",
    "InvariantViolation",
    "WorkerFailedError",
    "JoinTimeoutError",
    "ShmAttachError",
    "DegradedExecutionWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DatasetError(ReproError):
    """A dataset file or in-memory collection is malformed."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm or generator parameter is out of its valid range."""


class InvariantViolation(ReproError, AssertionError):
    """A ``REPRO_CHECK=1`` runtime sanitizer assert failed.

    Derives from :class:`AssertionError` because these are debug asserts —
    they indicate a bug in the library (or a caller mutating frozen index
    storage), never a recoverable user input condition.
    """


class WorkerFailedError(ReproError, RuntimeError):
    """A parallel-join chunk failed on every attempt and fallback was off.

    Raised by :mod:`repro.core.supervisor` only when graceful degradation is
    disabled (``fallback=False``); with the default policy an exhausted
    chunk re-runs in-process instead of raising.
    """

    def __init__(self, chunk: int, attempts: int, last_error: str) -> None:
        self.chunk = chunk
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"chunk {chunk} failed after {attempts} attempt(s): {last_error}"
        )


class JoinTimeoutError(WorkerFailedError):
    """A chunk's worker exceeded ``task_timeout`` on its final attempt.

    Subclasses :class:`WorkerFailedError` so one ``except`` handles both;
    the distinct type exists because a hang usually points at a different
    root cause (lock, I/O stall) than a crash.
    """


class ShmAttachError(ReproError, OSError):
    """Attaching a shared-memory segment failed in a worker.

    Classified separately from other worker errors because the supervisor
    reacts differently: repeated attach failures downgrade the payload path
    from shared memory to pickling instead of burning retries on a segment
    that will never map.
    """


class DegradedExecutionWarning(UserWarning):
    """A parallel join completed, but not on the fast path it started on.

    Emitted (via :mod:`warnings`) whenever the supervisor downgrades a
    chunk — shm → pickle payload, or worker → in-process execution — so
    callers notice that results were computed correctly but more slowly.
    Not a :class:`ReproError`: the join still returned the exact pair set.
    """


class UnknownMethodError(ReproError, KeyError):
    """The requested join method name is not registered."""

    def __init__(self, name: str, known: tuple) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown join method {name!r}; known methods: {', '.join(self.known)}"
        )
