"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle anything the
library signals while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatasetError",
    "InvalidParameterError",
    "UnknownMethodError",
    "InvariantViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DatasetError(ReproError):
    """A dataset file or in-memory collection is malformed."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm or generator parameter is out of its valid range."""


class InvariantViolation(ReproError, AssertionError):
    """A ``REPRO_CHECK=1`` runtime sanitizer assert failed.

    Derives from :class:`AssertionError` because these are debug asserts —
    they indicate a bug in the library (or a caller mutating frozen index
    storage), never a recoverable user input condition.
    """


class UnknownMethodError(ReproError, KeyError):
    """The requested join method name is not registered."""

    def __init__(self, name: str, known: tuple) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown join method {name!r}; known methods: {', '.join(self.known)}"
        )
