"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle anything the
library signals while letting genuine bugs (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatasetError",
    "InvalidParameterError",
    "UnknownMethodError",
    "InvariantViolation",
    "WorkerFailedError",
    "JoinTimeoutError",
    "ShmAttachError",
    "CheckpointError",
    "ResumeMismatchError",
    "JoinAbortedError",
    "JoinCancelledError",
    "DeadlineExceededError",
    "DegradedExecutionWarning",
    "ServeError",
    "ServeProtocolError",
    "ServeConnectionError",
    "ServeReadOnlyError",
    "AdmissionRejectedError",
    "RequestDeadlineError",
    "WalError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DatasetError(ReproError):
    """A dataset file or in-memory collection is malformed."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm or generator parameter is out of its valid range."""


class InvariantViolation(ReproError, AssertionError):
    """A ``REPRO_CHECK=1`` runtime sanitizer assert failed.

    Derives from :class:`AssertionError` because these are debug asserts —
    they indicate a bug in the library (or a caller mutating frozen index
    storage), never a recoverable user input condition.
    """


class WorkerFailedError(ReproError, RuntimeError):
    """A parallel-join chunk failed on every attempt and fallback was off.

    Raised by :mod:`repro.core.supervisor` only when graceful degradation is
    disabled (``fallback=False``); with the default policy an exhausted
    chunk re-runs in-process instead of raising.
    """

    def __init__(self, chunk: int, attempts: int, last_error: str) -> None:
        self.chunk = chunk
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"chunk {chunk} failed after {attempts} attempt(s): {last_error}"
        )


class JoinTimeoutError(WorkerFailedError):
    """A chunk's worker exceeded ``task_timeout`` on its final attempt.

    Subclasses :class:`WorkerFailedError` so one ``except`` handles both;
    the distinct type exists because a hang usually points at a different
    root cause (lock, I/O stall) than a crash.
    """


class ShmAttachError(ReproError, OSError):
    """Attaching a shared-memory segment failed in a worker.

    Classified separately from other worker errors because the supervisor
    reacts differently: repeated attach failures downgrade the payload path
    from shared memory to pickling instead of burning retries on a segment
    that will never map.
    """


class CheckpointError(ReproError):
    """A checkpoint directory is missing, corrupt, or unusable.

    Raised by :mod:`repro.core.runlog` when a run manifest cannot be read
    or written, or when a fresh run is pointed at a directory that already
    holds another run's manifest (pass ``resume=True`` to continue it, or
    clear the directory).
    """


class ResumeMismatchError(CheckpointError):
    """``resume=True`` was refused: the manifest describes a different run.

    The dataset fingerprints or join parameters recorded in the write-ahead
    manifest do not match the current call, so the spilled chunk results
    cannot be trusted to belong to this join. The message names every
    mismatched field. A distinct type so callers can tell "wrong inputs"
    apart from "corrupt checkpoint" (:class:`CheckpointError`).
    """


class JoinAbortedError(ReproError, RuntimeError):
    """A supervised join stopped before all chunks settled.

    Base class for cooperative-cancellation and deadline aborts. When a
    checkpoint directory is armed, every chunk settled before the abort has
    already been spilled durably and the ABORTED marker is written, so a
    subsequent ``resume=True`` run dispatches only the remainder.
    """

    def __init__(self, reason: str, completed: int, total: int) -> None:
        self.reason = reason
        self.completed = completed
        self.total = total
        super().__init__(
            f"join aborted ({reason}): {completed}/{total} chunk(s) settled"
        )


class JoinCancelledError(JoinAbortedError):
    """The join was cancelled cooperatively (SIGINT/SIGTERM or a token)."""


class DeadlineExceededError(JoinAbortedError):
    """The join exceeded its overall ``deadline=`` wall-clock budget."""


class DegradedExecutionWarning(UserWarning):
    """A parallel join completed, but not on the fast path it started on.

    Emitted (via :mod:`warnings`) whenever the supervisor downgrades a
    chunk — shm → pickle payload, or worker → in-process execution — so
    callers notice that results were computed correctly but more slowly.
    Not a :class:`ReproError`: the join still returned the exact pair set.
    """


class ServeError(ReproError):
    """The resident join server failed to start, bind, or tear down.

    Wraps the ``OSError`` family at the serve boundary so the CLI's
    exception contract (RL801: everything crossing ``cli.main`` is an
    :mod:`repro.errors` type) holds for socket failures too.
    """


class ServeProtocolError(ServeError):
    """A client request violated the line-delimited JSON protocol.

    Answered over the wire as an ``error_kind: "bad_request"`` response;
    only malformed *transport* (unparseable framing on a stream that can
    no longer be trusted) tears the connection down.
    """


class AdmissionRejectedError(ServeError):
    """A write was refused by the server's memory-budget admission control.

    The request was well-formed; the server declined it because accepting
    the bytes would push the resident footprint past ``--memory-budget``.
    Mapped to ``error_kind: "admission_rejected"`` — clients may retry
    after deletes or a compaction shrink the footprint.
    """


class ServeConnectionError(ServeError):
    """The client's transport to the server failed (connect, send, read).

    A *transport* failure, distinct from a server-sent error response: the
    request may or may not have been applied. :class:`ServeClient` retries
    these — with capped backoff, and only for idempotent ops — when
    ``retries=`` is enabled; everything else fails fast.
    """


class ServeReadOnlyError(ServeError):
    """A mutating op was sent to a server that cannot accept writes.

    Raised by a warm-standby replica (writes go to the primary until the
    replica is promoted). Mapped to ``error_kind: "read_only"``.
    """


class WalError(ServeError):
    """The serve write-ahead log could not append, sync, or replay.

    Covers an append or fsync failure (after which the server degrades to
    read-only: an op whose log record is not durable must never be
    acknowledged), a replay divergence (a checksummed record re-applied to
    the recovered state produced a different result), and a generation
    fence refusal during replication. Mapped to ``error_kind:
    "wal_error"``.
    """


class RequestDeadlineError(ServeError):
    """A request's deadline expired before or while it was being served.

    Mirrors :class:`DeadlineExceededError` at request granularity: the
    batch-query loop polls the deadline between records and abandons the
    remainder. Mapped to ``error_kind: "deadline_exceeded"``.
    """


class UnknownMethodError(ReproError, KeyError):
    """The requested join method name is not registered."""

    def __init__(self, name: str, known: tuple) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown join method {name!r}; known methods: {', '.join(self.known)}"
        )
