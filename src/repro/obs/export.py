"""Exporters: JSON report, flat ``key value`` text, and the phase table.

Three renderings of one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`registry_as_dict` / :func:`to_json` / :func:`write_json` — the
  machine form (counters, gauges, histogram summaries, nested span tree),
  what ``lcjoin join --metrics=PATH`` writes;
* :func:`flat_text` — one ``key value`` pair per line, greppable and
  diffable (span timings flatten to ``span.<path>.count`` /
  ``span.<path>.seconds``);
* :func:`phase_table` — the human-readable rendering the CLI prints: the
  span tree as an indented phase table plus the counter table, both
  through :func:`repro.bench.report.format_table` so metrics output lines
  up with the benchmark tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .catalogue import COUNTER_CATALOGUE
from .registry import MetricsRegistry

__all__ = [
    "registry_as_dict",
    "to_json",
    "write_json",
    "flat_text",
    "phase_table",
]


def registry_as_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """Everything the registry holds, as plain JSON-ready data."""
    return {
        "counters": dict(registry.counters),
        "gauges": dict(registry.gauges),
        "histograms": {
            name: hist.as_dict() for name, hist in registry.histograms.items()
        },
        "spans": [node.as_dict() for node in registry.span_root.children.values()],
    }


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The dict form serialised (sorted keys, so reports diff cleanly)."""
    return json.dumps(registry_as_dict(registry), indent=indent, sort_keys=True)


def write_json(registry: MetricsRegistry, path: str) -> None:
    """Write the JSON report to ``path`` (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(registry))
        handle.write("\n")


def _span_rows(registry: MetricsRegistry) -> List[Tuple[str, int, float]]:
    """``(indented name, calls, seconds)`` rows, pre-order."""
    return [
        ("  " * depth + node.name, node.count, node.seconds)
        for depth, node in registry.span_root.walk()
    ]


def _ordered_counters(registry: MetricsRegistry) -> List[Tuple[str, float]]:
    """Counters in catalogue order, undocumented extras alphabetically last."""
    rows = [
        (name, registry.counters[name])
        for name in COUNTER_CATALOGUE
        if name in registry.counters
    ]
    rows.extend(
        (name, value)
        for name, value in sorted(registry.counters.items())
        if name not in COUNTER_CATALOGUE
    )
    return rows


def flat_text(registry: MetricsRegistry) -> str:
    """One ``key value`` pair per line; spans flatten to dotted paths."""
    lines: List[str] = []
    for name, value in _ordered_counters(registry):
        lines.append(f"{name} {_fmt_value(value)}")
    for name in sorted(registry.gauges):
        lines.append(f"{name} {_fmt_value(registry.gauges[name])}")
    for name in sorted(registry.histograms):
        summary = registry.histograms[name].as_dict()
        for key in ("count", "sum", "min", "max", "mean"):
            lines.append(f"{name}.{key} {_fmt_value(summary[key])}")
    stack: List[str] = []
    for depth, node in registry.span_root.walk():
        del stack[depth:]
        stack.append(node.name)
        path = ".".join(stack)
        lines.append(f"span.{path}.count {node.count}")
        lines.append(f"span.{path}.seconds {node.seconds:.6f}")
    return "\n".join(lines)


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6f}"
    return str(int(value))


def phase_table(registry: MetricsRegistry) -> str:
    """The human-readable report: phase (span) table + counter table."""
    # Imported lazily: bench.report pulls in the benchmark runner, which
    # imports core.api, which imports this package — the cycle is broken
    # by deferring until somebody actually renders a table.
    from ..bench.report import format_table

    sections: List[str] = []
    span_rows = _span_rows(registry)
    if span_rows:
        sections.append(
            format_table(
                ("phase", "calls", "time(s)"),
                [(name, count, round(seconds, 4)) for name, count, seconds in span_rows],
            )
        )
    counter_rows = _ordered_counters(registry)
    gauge_rows = sorted(registry.gauges.items())
    if counter_rows or gauge_rows:
        sections.append(
            format_table(
                ("counter", "value"),
                [(name, _fmt_value(value)) for name, value in counter_rows]
                + [(name, _fmt_value(value)) for name, value in gauge_rows],
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
