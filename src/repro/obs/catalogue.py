"""The documented span and counter catalogue.

Every ``trace_span`` name used anywhere in the library must be a dotted
lowercase **literal** drawn from :data:`SPAN_CATALOGUE` — dynamic span
names would fragment the aggregated span tree and break cross-run
comparisons, so repro-lint's RL501 check enforces both properties
statically (it parses this file with ``ast``; keep both catalogues as
pure literals).

Counters are namespaced the same way. The ``join.*`` family mirrors the
fields of :class:`repro.core.stats.JoinStats` one-to-one and is written at
exactly one place (:func:`repro.core.api.set_containment_join` flushing
the run's stats delta), so the two counter systems cannot drift; all the
other families are native to the registry and measure what ``JoinStats``
never could — kernel batch shapes, supervisor events, broker traffic.
"""

from __future__ import annotations

__all__ = ["SPAN_CATALOGUE", "COUNTER_CATALOGUE"]

#: Every legal ``trace_span`` name. Dotted lowercase, ``[a-z0-9_]``
#: segments; the first segment is the subsystem.
SPAN_CATALOGUE = frozenset(
    {
        "join.run",  # one set_containment_join invocation end to end
        "index.build",  # inverted/CSR index construction on S
        "index.csr_pack",  # repacking a python-backend index into CSR form
        "index.hybrid_pack",  # promoting a CSR index to the hybrid backend
        "order.build",  # global element order construction
        "tree.build",  # prefix tree construction on R
        "tree.traverse",  # Algorithm 2: repeated postorder traversals
        "probe.loop",  # the cross-cutting probe loop over R's records
        "parallel.supervise",  # the supervisor's dispatch/retry event loop
        "shard.dispatch",  # the shard coordinator's assign/heartbeat/respawn loop
        "shard.merge",  # merging settled shard results in chunk-id order
        "checkpoint.write",  # one durable chunk spill (temp → fsync → rename)
        "checkpoint.resume",  # scanning/validating spills on a resumed run
        "pubsub.rebuild",  # broker subscription-tree rebuild (compaction)
        "serve.request",  # one request dispatched by the resident server
        "serve.compact",  # an explicit compact op on the resident structures
        "wal.replay",  # recovery replay of the op-log tail past the snapshot
        "wal.snapshot",  # one atomic snapshot checkpoint write
        "replica.poll",  # one wal_fetch poll-and-apply step of a replica
        "replica.promote",  # failover: a replica taking over as primary
    }
)

#: Every counter the instrumented paths emit, with its meaning. The
#: phase-table exporter renders counters in this order; undocumented
#: counters still render (alphabetically, after these) but adding a name
#: here is part of adding the instrumentation.
COUNTER_CATALOGUE = {
    # -- join.*: one-to-one mirrors of JoinStats (single source of truth) --
    "join.binary_searches": "probes into inverted lists (JoinStats mirror)",
    "join.entries_touched": "postings materialised or compared (JoinStats mirror)",
    "join.candidates": "pairs that reached verification (JoinStats mirror)",
    "join.results": "result pairs emitted (JoinStats mirror)",
    "join.rounds": "cross-cutting rounds run (JoinStats mirror)",
    "join.index_build_tokens": "tokens touched building indexes (JoinStats mirror)",
    "join.tree_nodes": "prefix-tree nodes built (JoinStats mirror)",
    "join.partitions_local": "partitions processed with a local index (JoinStats mirror)",
    "join.partitions_global": "partitions processed with the global index (JoinStats mirror)",
    "join.elapsed_seconds": "total join wall-clock seconds (JoinStats mirror)",
    "join.peak_memory_bytes": "peak RSS high-watermark gauge (JoinStats mirror)",
    # -- index.*: construction-side work --
    "index.builds": "global inverted-index builds",
    "index.local_builds": "local (partition) index builds",
    "index.tokens": "tokens scanned during index construction",
    "index.csr_builds": "CSR index builds/repacks",
    "index.csr_postings": "postings packed into CSR arrays",
    "index.hybrid_builds": "hybrid index builds/promotions",
    "index.hybrid_dense_lists": "inverted lists given a bitmap row",
    # -- probe.*: the python cross-cutting loop --
    "probe.records": "R records that entered the cross-cutting loop",
    "probe.records_skipped": "R records skipped (an element absent from S)",
    "probe.binary_searches": "bisect probes issued by the python loop",
    "probe.rounds": "candidate-advance rounds of the python loop",
    "probe.matches": "containments emitted by the python loop",
    "probe.early_term_breaks": "rounds cut short by early termination",
    # -- kernel.*: the batched CSR supersteps --
    "kernel.searchsorted_calls": "batched np.searchsorted calls issued",
    "kernel.probes": "individual (list, target) probes answered in batches",
    "kernel.supersteps": "whole-collection supersteps run",
    "kernel.single_element_records": "records short-circuited to their full list",
    "kernel.straggler_records": "records finished on the scalar straggler path",
    "kernel.bitmap_probes": "probes answered through bitmap rows",
    "kernel.bitmap_fallbacks": "bitmap gaps finished on the CSR arrays",
    "kernel.gallop_probes": "probes answered by the batched gallop",
    "kernel.gallop_fallbacks": "gallop probes finished by global searchsorted",
    # -- tree.*: the tree-based method --
    "tree.nodes": "prefix-tree nodes bound for traversal",
    "tree.rounds": "postorder traversal rounds",
    "tree.searches": "bisect probes issued by traversals",
    # -- supervisor.*: the fault-tolerant parallel driver --
    "supervisor.attempts": "chunk attempts dispatched (including retries)",
    "supervisor.retries": "re-dispatches after a failed attempt",
    "supervisor.ok": "attempts that returned a result",
    "supervisor.errors": "attempts that raised in the worker",
    "supervisor.crashes": "attempts whose worker died silently",
    "supervisor.timeouts": "attempts killed at the task_timeout deadline",
    "supervisor.fallbacks": "chunks degraded to in-process execution",
    "supervisor.degradations": "degradation events (payload downgrades, fallbacks)",
    "supervisor.cancellations": "runs aborted by cooperative cancellation",
    "supervisor.deadline_aborts": "runs aborted at the overall deadline",
    "supervisor.memory_splits": "admission-control chunk-split decisions",
    "supervisor.memory_caps": "admission-control worker-cap decisions",
    # -- shard.*: the scale-out coordinator --
    "shard.assigned": "chunk dispatches sent to shard nodes (incl. duplicates)",
    "shard.settled": "chunks settled by a shard result (first settle wins)",
    "shard.speculated": "speculative duplicate dispatches issued for stragglers",
    "shard.speculation_wins": "chunks won by the speculative attempt",
    "shard.restarts": "dead shard incarnations respawned",
    "shard.heartbeat_misses": "shards declared dead for missing heartbeats",
    # -- checkpoint.*: the durable run log --
    "checkpoint.chunks_written": "chunk spills durably committed",
    "checkpoint.bytes_written": "bytes committed to chunk spills",
    "checkpoint.chunks_resumed": "verified spills loaded instead of re-run",
    "checkpoint.chunks_discarded": "torn/invalid spills discarded on resume",
    "checkpoint.write_errors": "spill writes abandoned on OSError",
    "checkpoint.stale_segments": "leaked shm segments reclaimed on resume",
    "checkpoint.aborts": "ABORTED markers written",
    # -- pubsub.*: the broker --
    "pubsub.subscribed": "subscriptions registered",
    "pubsub.unsubscribed": "subscriptions cancelled",
    "pubsub.published": "events published",
    "pubsub.delivered": "subscription matches delivered",
    "pubsub.compactions": "tombstone compactions scheduled",
    "pubsub.rebuilds": "subscription-tree rebuilds",
    # -- incremental maintenance (resident index/trie) --
    "index.incremental_appends": "records appended to the delta segment",
    "index.incremental_deletes": "records tombstoned in the resident index",
    "index.incremental_compactions": "resident index base rebuilds",
    "tree.trie_compactions": "resident prefix-trie compactions",
    # -- serve.*: the resident join service --
    "serve.connections": "client connections accepted",
    "serve.requests": "requests dispatched",
    "serve.batches": "non-empty request batches drained",
    "serve.errors": "error responses sent",
    "serve.queries": "containment point queries answered",
    "serve.appends": "append ops applied",
    "serve.deletes": "delete ops that removed a live record",
    "serve.deadline_rejections": "requests refused at their deadline",
    "serve.admission_rejections": "writes refused by the memory budget",
    "serve.request_seconds": "request service time histogram",
    "serve.publish_seconds": "publish service time histogram",
    "serve.query_seconds": "query service time histogram",
    "serve.resident_bytes": "resident footprint gauge (analytic model)",
    "serve.publish_p50_ms": "publish latency p50 gauge (ring window)",
    "serve.publish_p99_ms": "publish latency p99 gauge (ring window)",
    "serve.query_p50_ms": "query latency p50 gauge (ring window)",
    "serve.query_p99_ms": "query latency p99 gauge (ring window)",
    "serve.read_only_rejections": "writes refused by a read-only replica",
    # -- wal.*: the serve write-ahead log --
    "wal.appends": "op records appended to the write-ahead log",
    "wal.bytes_appended": "bytes appended to the write-ahead log",
    "wal.fsyncs": "group-commit fsyncs (one per drained request batch)",
    "wal.last_seq": "last appended-and-synced log sequence gauge",
    "wal.append_errors": "append/fsync failures degrading the log to read-only",
    "wal.records_replayed": "log records re-applied during recovery",
    "wal.torn_tail_truncated": "torn log tails truncated on recovery",
    "wal.snapshots_written": "snapshot checkpoints atomically written",
    "wal.snapshot_fallbacks": "unusable snapshots degraded to full-log replay",
    # -- replica.*: warm-standby replication --
    "replica.polls": "wal_fetch polls issued against the primary",
    "replica.records_applied": "streamed records applied in sid-lockstep",
    "replica.poll_errors": "polls that failed (transport or refusal)",
    "replica.fenced": "streams refused by the generation/lineage fence",
    "replica.promotions": "replicas promoted to primary",
    "replica.lag_records": "records behind the primary gauge",
}
