"""The metrics registry: counters, gauges, histograms, and the span tree.

Zero-dependency observability for the join pipeline. One
:class:`MetricsRegistry` collects everything a run emits; the registry in
force is a **module global** (``ACTIVE``), because the instrumented hot
paths must be able to test "is tracing on?" with a single global load —
any indirection (thread locals, callables) would show up in the
per-record flush points.

Off by default. Two ways to turn it on:

* ``REPRO_TRACE=1`` in the environment installs a process-wide registry
  at import time (what the CI metrics-smoke job uses);
* :func:`use_registry` / the ``metrics=`` kwarg on
  :func:`repro.core.api.set_containment_join` installs one for a scope.

Instrumented code follows one discipline, which is what keeps the
disabled path negligible: accumulate into **plain local ints** inside the
loop, then flush once per record/run::

    reg = _obs.ACTIVE
    if reg is not None:
        reg.inc("probe.binary_searches", searches)

Low-frequency call sites (the supervisor, the broker) may instead hold
:data:`NULL_REGISTRY` — a no-op with the full interface — so their event
hooks stay unconditional.

The registry is deliberately not thread-safe: the join drivers
parallelise with *processes* (each worker gets its own registry from the
inherited environment), and a lock per counter bump would cost more than
the counters measure.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Histogram",
    "SpanNode",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "ACTIVE",
    "get_registry",
    "active_or_null",
    "install",
    "uninstall",
    "use_registry",
]


class Histogram:
    """Streaming summary of an observed distribution (count/sum/min/max).

    Kept O(1) in memory on purpose: the registry can stay installed for a
    whole process (``REPRO_TRACE=1`` across a full test run) without
    growing with the number of observations.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class SpanNode:
    """One aggregated node of the span tree.

    Same-named spans under the same parent **aggregate** (count + total
    seconds) instead of appending — the tree is bounded by the span
    catalogue times the nesting depth, never by how many joins ran.
    """

    __slots__ = ("name", "count", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.children: Dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "SpanNode"]]:
        """Pre-order ``(depth, node)`` pairs, children in creation order."""
        for node in self.children.values():
            yield depth, node
            yield from node.walk(depth + 1)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "seconds": self.seconds,
        }
        if self.children:
            out["children"] = [c.as_dict() for c in self.children.values()]
        return out


class _Timer:
    """Context manager recording a monotonic elapsed time into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class MetricsRegistry:
    """Counters, gauges, histograms, and the nested span timing tree."""

    __slots__ = ("counters", "gauges", "histograms", "span_root", "_span_stack")

    #: Whether this registry records anything (False on :class:`NullRegistry`).
    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.span_root = SpanNode("")
        self._span_stack: List[SpanNode] = [self.span_root]

    # -- counters / gauges / histograms -----------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``max(current, value)`` (high-watermark)."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram()
            self.histograms[name] = hist
        hist.observe(value)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("x"): ...`` observes elapsed seconds."""
        return _Timer(self, name)

    def value(self, name: str) -> float:
        """Counter value, falling back to the gauge of the same name, else 0."""
        got = self.counters.get(name)
        if got is not None:
            return got
        return self.gauges.get(name, 0)

    # -- spans -------------------------------------------------------------

    def enter_span(self, name: str) -> None:
        node = self._span_stack[-1].child(name)
        node.count += 1
        self._span_stack.append(node)

    def exit_span(self, seconds: float) -> None:
        if len(self._span_stack) > 1:  # the root is never popped
            self._span_stack.pop().seconds += seconds

    # -- the JoinStats bridge ----------------------------------------------

    def record_join_stats(self, delta: Mapping[str, float]) -> None:
        """Fold one join run's :class:`~repro.core.stats.JoinStats` delta in.

        The mapping is a stats ``as_dict()`` (or a
        :class:`~repro.core.stats.StatsSnapshot` delta); every field lands
        under the mirrored ``join.*`` name. ``elapsed_seconds`` accumulates
        as a counter too (total join time under this registry);
        ``peak_memory_bytes`` is a high-watermark gauge. This is the
        **only** writer of the ``join.*`` family, which is what makes the
        registry and ``JoinStats`` drift-proof by construction.
        """
        for name, value in delta.items():
            if name == "peak_memory_bytes":
                self.max_gauge("join." + name, value)
            else:
                self.inc("join." + name, value)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Drop everything recorded (open spans included)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.span_root = SpanNode("")
        self._span_stack = [self.span_root]


class NullRegistry(MetricsRegistry):
    """The no-op registry: full interface, records nothing.

    For call sites that prefer an unconditional ``self._metrics.inc(...)``
    over testing ``ACTIVE`` — event-frequency code only; hot loops use the
    ``ACTIVE is None`` test instead.
    """

    __slots__ = ()

    enabled = False

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def max_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def enter_span(self, name: str) -> None:
        pass

    def exit_span(self, seconds: float) -> None:
        pass

    def record_join_stats(self, delta: Mapping[str, float]) -> None:
        pass


#: Shared no-op instance (stateless, safe to hold anywhere).
NULL_REGISTRY = NullRegistry()

#: The registry in force, or ``None`` when tracing is off. Hot paths read
#: this directly (one global load); everyone else goes through the helpers.
ACTIVE: Optional[MetricsRegistry] = None

if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
    # Process-wide activation: every join in this interpreter records into
    # one registry (the CI metrics-smoke job runs the whole suite this way).
    ACTIVE = MetricsRegistry()


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when tracing is disabled."""
    return ACTIVE


def active_or_null() -> MetricsRegistry:
    """The active registry, or the shared no-op when tracing is disabled."""
    return ACTIVE if ACTIVE is not None else NULL_REGISTRY


def install(registry: MetricsRegistry) -> None:
    """Make ``registry`` the process-wide active registry."""
    global ACTIVE
    ACTIVE = registry


def uninstall() -> None:
    """Disable tracing (the default state)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the scope of the ``with`` block.

    Restores whatever was active before on exit, so scoped metering (the
    ``metrics=`` kwarg, tests) composes with process-wide ``REPRO_TRACE``.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry
    try:
        yield registry
    finally:
        ACTIVE = previous
