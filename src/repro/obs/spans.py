"""``trace_span`` — the nested timing tree's single entry point.

Usage, always with a **dotted lowercase literal** from
:data:`repro.obs.catalogue.SPAN_CATALOGUE` (enforced by repro-lint RL501)::

    with trace_span("tree.build"):
        tree = PrefixTree.build(r_collection, order)

Spans nest: a span opened while another is open becomes its child in the
active registry's :class:`~repro.obs.registry.SpanNode` tree, and
same-named spans under the same parent aggregate. When no registry is
active, :func:`trace_span` returns a shared no-op context manager — the
disabled cost is one global load and one ``with`` setup, which is why
spans are placed at *phase* granularity (per build, per traversal run),
never per record.
"""

from __future__ import annotations

import time
from typing import ContextManager, Optional, Type

from . import registry as _registry
from .registry import MetricsRegistry

__all__ = ["trace_span"]


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: enters the registry's span stack, times with a
    monotonic clock, and pops on exit even when the body raises."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._registry.enter_span(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        self._registry.exit_span(time.perf_counter() - self._start)
        return None


def trace_span(name: str) -> "ContextManager[object]":
    """Open a named span in the active registry (no-op when tracing is off).

    ``name`` must be a dotted lowercase literal from the documented span
    catalogue; repro-lint RL501 rejects dynamic or uncatalogued names
    because they would fragment span aggregation.
    """
    reg = _registry.ACTIVE
    if reg is None:
        return _NULL_SPAN
    return _Span(reg, name)
