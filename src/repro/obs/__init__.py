"""Observability: tracing spans, metrics counters, and join-phase reports.

Zero-dependency and **off by default** — when no registry is installed
the instrumented hot paths pay one global load per flush point and
nothing else. Enable with ``REPRO_TRACE=1`` (process-wide), the
``metrics=`` kwarg on :func:`repro.core.api.set_containment_join`
(scoped), or :func:`use_registry` directly::

    from repro.obs import MetricsRegistry, use_registry
    from repro.obs.export import phase_table

    reg = MetricsRegistry()
    with use_registry(reg):
        set_containment_join(r, s, method="tree_et")
    print(phase_table(reg))

See :mod:`repro.obs.catalogue` for the documented span and counter names
and docs/internals.md ("Observability") for how ``JoinStats`` maps onto
the ``join.*`` counter family.
"""

from .catalogue import COUNTER_CATALOGUE, SPAN_CATALOGUE
from .export import flat_text, phase_table, registry_as_dict, to_json, write_json
from .registry import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpanNode,
    active_or_null,
    get_registry,
    install,
    uninstall,
    use_registry,
)
from .spans import trace_span

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Histogram",
    "SpanNode",
    "trace_span",
    "get_registry",
    "active_or_null",
    "install",
    "uninstall",
    "use_registry",
    "registry_as_dict",
    "to_json",
    "write_json",
    "flat_text",
    "phase_table",
    "SPAN_CATALOGUE",
    "COUNTER_CATALOGUE",
]
