"""Memory metering (Fig 10 reproduction)."""

from .meter import index_footprint, measure_peak, tree_footprint

__all__ = ["measure_peak", "index_footprint", "tree_footprint"]
