"""Peak-memory metering for the Fig 10 reproduction.

Two complementary measurements:

* :func:`measure_peak` runs a callable under ``tracemalloc`` and reports the
  peak *Python-allocated* bytes — the honest equivalent of the paper's peak
  RSS measurement for a pure-Python system (RSS itself is dominated by the
  interpreter and noise at our scales);
* :func:`index_footprint` / :func:`tree_footprint` give analytic structure
  sizes (entries, nodes) that are hardware- and runtime-independent, used as
  a second axis in the Fig 10 bench.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Callable, List, Tuple

from ..data.collection import SetCollection
from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree

__all__ = [
    "measure_peak",
    "index_footprint",
    "tree_footprint",
    "collection_footprint",
]

#: One slot per live ``measure_peak`` frame. ``tracemalloc.reset_peak`` is
#: process-global, so a nested measurement silently clobbers the peak every
#: *enclosing* measurement has accumulated; before resetting, the peak so
#: far is folded into each enclosing frame's slot, and every frame reports
#: ``max(its slot, tracemalloc's reading)`` — the reading tracemalloc would
#: have given had the inner reset never happened.
_nested_peaks: List[int] = []


def measure_peak(func: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``func`` and return ``(result, peak_bytes)``.

    Nested use is supported: if tracemalloc is already tracing, the
    existing trace is reused, so peaks are *absolute* traced sizes and
    include the caller's live allocations. Nested ``measure_peak`` calls do
    not clobber each other — an enclosing measurement's peak is preserved
    across the inner call's ``reset_peak`` (see ``_nested_peaks``). A
    caller driving ``tracemalloc`` directly, outside ``measure_peak``, has
    no such frame: its recorded peak *is* reset by this call (the API
    offers no way to restore it), which is why all metering in this
    codebase funnels through this function.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    else:
        __, peak_so_far = tracemalloc.get_traced_memory()
        for i in range(len(_nested_peaks)):
            _nested_peaks[i] = max(_nested_peaks[i], peak_so_far)
    _nested_peaks.append(0)
    tracemalloc.reset_peak()
    try:
        result = func()
        __, peak = tracemalloc.get_traced_memory()
        peak = max(peak, _nested_peaks[-1])
    finally:
        _nested_peaks.pop()
        if not was_tracing:
            tracemalloc.stop()
    return result, peak


def index_footprint(index: InvertedIndex) -> int:
    """Analytic index size: number of postings plus per-list overhead."""
    return index.size_in_entries() + len(index.lists)


def tree_footprint(tree: PrefixTree) -> int:
    """Analytic tree size in nodes."""
    return tree.num_nodes


def collection_footprint(collection: SetCollection) -> int:
    """Analytic collection size: total tokens plus per-record overhead.

    The same entries-not-bytes convention as :func:`index_footprint`; the
    parallel driver's memory-budget admission control multiplies this by
    its per-entry byte constants to size chunks and cap concurrency.
    """
    return collection.total_tokens() + len(collection)
