"""Peak-memory metering for the Fig 10 reproduction.

Two complementary measurements:

* :func:`measure_peak` runs a callable under ``tracemalloc`` and reports the
  peak *Python-allocated* bytes — the honest equivalent of the paper's peak
  RSS measurement for a pure-Python system (RSS itself is dominated by the
  interpreter and noise at our scales);
* :func:`index_footprint` / :func:`tree_footprint` give analytic structure
  sizes (entries, nodes) that are hardware- and runtime-independent, used as
  a second axis in the Fig 10 bench.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Callable, Tuple

from ..index.inverted import InvertedIndex
from ..index.prefix_tree import PrefixTree

__all__ = ["measure_peak", "index_footprint", "tree_footprint"]


def measure_peak(func: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``func`` and return ``(result, peak_bytes)``.

    Nested use is supported: if tracemalloc is already tracing, the existing
    trace is reused (peaks then include the caller's allocations).
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, peak


def index_footprint(index: InvertedIndex) -> int:
    """Analytic index size: number of postings plus per-list overhead."""
    return index.size_in_entries() + len(index.lists)


def tree_footprint(tree: PrefixTree) -> int:
    """Analytic tree size in nodes."""
    return tree.num_nodes
